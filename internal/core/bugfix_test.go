package core

import (
	"testing"

	"dropback/internal/nn"
)

// skewedSet builds a parameter space whose final tensor is tiny: two
// Linears yield tensors of 30, 3, 6 and 2 weights. With Budget 39 the
// floor shares are 28+2+5 and the last tensor must absorb 4 — more than
// its 2 weights. Before the fix the surplus was silently dropped and only
// 37 weights were tracked.
func skewedSet() *nn.ParamSet {
	fc1 := nn.NewLinear("s/fc1", 7, 10, 3) // W: 30, B: 3
	fc2 := nn.NewLinear("s/fc2", 7, 3, 2)  // W: 6, B: 2
	return nn.NewParamSet(fc1, fc2)
}

func TestPerLayerBudgetExactOnSkewedSizes(t *testing.T) {
	set := skewedSet()
	db := New(set, Config{Budget: 39, PerLayerBudget: true})
	perturbAll(set, 0.01)
	db.Apply()
	if got := db.TrackedCount(); got != 39 {
		t.Fatalf("tracked count = %d, want the full budget 39", got)
	}
	// Per-tensor allocation must never exceed the tensor's size.
	for _, r := range db.RetentionByParam() {
		if r.Retained > r.Total {
			t.Fatalf("tensor %s retains %d of %d", r.Name, r.Retained, r.Total)
		}
	}
}

func TestPerLayerBudgetExactAcrossBudgets(t *testing.T) {
	set := skewedSet()
	for budget := 1; budget <= set.Total(); budget++ {
		db := New(set, Config{Budget: budget, PerLayerBudget: true})
		perturbAll(set, 0.01)
		db.Apply()
		if got := db.TrackedCount(); got != budget {
			t.Fatalf("budget %d: tracked count = %d", budget, got)
		}
	}
}

func TestDisableSwapHistoryKeepsSummary(t *testing.T) {
	set, _, _ := makeSet()
	db := New(set, Config{Budget: 7, DisableSwapHistory: true})
	for i := 0; i < 5; i++ {
		perturbAll(set, 0.01*float32(i+1))
		db.Apply()
	}
	if h := db.SwapHistory(); len(h) != 0 {
		t.Fatalf("series kept despite DisableSwapHistory: %v", h)
	}
	s := db.Swaps()
	if s.Steps != 5 {
		t.Fatalf("summary steps = %d, want 5", s.Steps)
	}
	if st := db.State(); st.Swaps != s {
		t.Fatalf("State summary %+v differs from live summary %+v", st.Swaps, s)
	}
}

func TestSwapSummaryMatchesSeries(t *testing.T) {
	set, _, _ := makeSet()
	db := New(set, Config{Budget: 7})
	for i := 0; i < 6; i++ {
		perturbAll(set, 0.01*float32(i+1))
		db.Apply()
	}
	if got, want := db.Swaps(), SummarizeSwaps(db.SwapHistory()); got != want {
		t.Fatalf("summary %+v, series summarizes to %+v", got, want)
	}
}

// TestRestoreStateTruncatesSeriesToSnapshot covers the divergence-rollback
// path: the in-memory series is deterministic, so rewinding to an earlier
// State must cut the series back to the captured prefix.
func TestRestoreStateTruncatesSeriesToSnapshot(t *testing.T) {
	set, _, _ := makeSet()
	db := New(set, Config{Budget: 7})
	for i := 0; i < 3; i++ {
		perturbAll(set, 0.01*float32(i+1))
		db.Apply()
	}
	st := db.State()
	prefix := db.SwapHistory()
	for i := 3; i < 6; i++ {
		perturbAll(set, 0.01*float32(i+1))
		db.Apply()
	}
	if err := db.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	got := db.SwapHistory()
	if len(got) != len(prefix) {
		t.Fatalf("series length after rollback = %d, want %d", len(got), len(prefix))
	}
	for i := range prefix {
		if got[i] != prefix[i] {
			t.Fatalf("series[%d] = %d, want %d", i, got[i], prefix[i])
		}
	}
	if db.Swaps() != st.Swaps {
		t.Fatalf("summary after rollback %+v, want %+v", db.Swaps(), st.Swaps)
	}
}

func TestTrackedCountAllocFree(t *testing.T) {
	set, _, _ := makeSet()
	db := New(set, Config{Budget: 7})
	perturbAll(set, 0.01)
	db.Apply()
	if allocs := testing.AllocsPerRun(100, func() { db.TrackedCount() }); allocs != 0 {
		t.Fatalf("TrackedCount allocates %.1f objects per call before freeze", allocs)
	}
	if got := db.TrackedCount(); got != 7 {
		t.Fatalf("tracked count = %d, want 7", got)
	}
	db.Freeze()
	if allocs := testing.AllocsPerRun(100, func() { db.TrackedCount() }); allocs != 0 {
		t.Fatalf("TrackedCount allocates %.1f objects per call after freeze", allocs)
	}
	if got := db.TrackedCount(); got != 7 {
		t.Fatalf("tracked count after freeze = %d, want 7", got)
	}
}
