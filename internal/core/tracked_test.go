package core

import (
	"math"
	"testing"

	"dropback/internal/nn"
	"dropback/internal/optim"
	"dropback/internal/xorshift"
)

// fillGrads writes the same pseudo-random gradient stream into every
// parameter of the set, keyed by step so each step differs.
func fillGrads(set *nn.ParamSet, step int) {
	g := 0
	for _, p := range set.Params() {
		for e := range p.Grad.Data {
			p.Grad.Data[e] = xorshift.IndexedUniform(uint64(1000+step), uint64(g))
			g++
		}
	}
}

// syncTrackedGrads simulates a perfect sparse backward pass: the tracked
// gradients are the dense gradients at the tracked indices.
func syncTrackedGrads(eng *TrackedTrainer, set *nn.ParamSet) {
	for i, p := range set.Params() {
		t := eng.big[i]
		if t == nil || t.TGrad == nil {
			continue
		}
		for k, fi := range t.Idx {
			t.TGrad[k] = p.Grad.Data[fi]
		}
	}
}

func assertSetsBitEqual(t *testing.T, ctx string, a, b *nn.ParamSet) {
	t.Helper()
	for i, p := range a.Params() {
		q := b.Params()[i]
		for e := range p.Value.Data {
			if math.Float32bits(p.Value.Data[e]) != math.Float32bits(q.Value.Data[e]) {
				t.Fatalf("%s: param %s[%d] = %x, want %x", ctx, p.Name, e,
					math.Float32bits(q.Value.Data[e]), math.Float32bits(p.Value.Data[e]))
			}
		}
	}
}

func assertEngineMatchesDense(t *testing.T, ctx string, eng *TrackedTrainer, db *DropBack) {
	t.Helper()
	assertEngineStateMatchesDense(t, ctx, eng, db)
	ea, da := eng.AccumulatedGradients(), db.AccumulatedGradients()
	for i := range da {
		if math.Float32bits(ea[i]) != math.Float32bits(da[i]) {
			t.Fatalf("%s: scores[%d] = %x vs dense %x", ctx, i,
				math.Float32bits(ea[i]), math.Float32bits(da[i]))
		}
	}
}

// assertEngineStateMatchesDense compares everything State carries (scores
// are live-only telemetry and not part of resumable state).
func assertEngineStateMatchesDense(t *testing.T, ctx string, eng *TrackedTrainer, db *DropBack) {
	t.Helper()
	if eng.TrackedCount() != db.TrackedCount() {
		t.Fatalf("%s: tracked count %d vs dense %d", ctx, eng.TrackedCount(), db.TrackedCount())
	}
	em, dm := eng.Mask(), db.Mask()
	for i := range dm {
		if em[i] != dm[i] {
			t.Fatalf("%s: mask[%d] = %v vs dense %v", ctx, i, em[i], dm[i])
		}
	}
	if eng.Regenerations() != db.Regenerations() || eng.TrackedWrites() != db.TrackedWrites() {
		t.Fatalf("%s: counters (%d,%d) vs dense (%d,%d)", ctx,
			eng.Regenerations(), eng.TrackedWrites(), db.Regenerations(), db.TrackedWrites())
	}
	if eng.Swaps() != db.Swaps() {
		t.Fatalf("%s: swap summary %+v vs dense %+v", ctx, eng.Swaps(), db.Swaps())
	}
}

// TestTrackedTrainerMatchesDensePipeline drives the engine and the dense
// sgd.Step+DropBack.Apply pipeline with identical gradient streams through
// fresh selection, freezing, and post-freeze steps, asserting bit-equal
// values and identical masks, counters, and swap telemetry at every step.
func TestTrackedTrainerMatchesDensePipeline(t *testing.T) {
	for _, budget := range []int{5, 7, 20, 53} {
		denseSet, _, _ := makeSet()
		sparseSet, sfc1, sfc2 := makeSet()

		db := New(denseSet, Config{Budget: budget, FreezeAfterEpoch: 1})
		eng := NewTrackedTrainer(sparseSet, Config{Budget: budget, FreezeAfterEpoch: 1})
		if _, err := eng.Virtualize(sfc1.W, sfc1.Out); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Virtualize(sfc2.W, sfc2.Out); err != nil {
			t.Fatal(err)
		}

		sgd := optim.NewSGD(0)
		const stepsPerEpoch = 4
		step := 0
		for epoch := 0; epoch < 4; epoch++ {
			lr := float32(0.25) / float32(epoch+1)
			sgd.LR = lr
			for s := 0; s < stepsPerEpoch; s++ {
				fillGrads(denseSet, step)
				fillGrads(sparseSet, step)
				syncTrackedGrads(eng, sparseSet)

				sgd.Step(denseSet)
				denseSwaps := db.Apply()
				sparseSwaps := eng.Apply(lr)
				if denseSwaps != sparseSwaps {
					t.Fatalf("budget %d step %d: swaps %d vs dense %d", budget, step, sparseSwaps, denseSwaps)
				}
				step++
			}
			db.MaybeFreezeAtEpochEnd(epoch)
			eng.MaybeFreezeAtEpochEnd(epoch)
			eng.Densify()
			assertSetsBitEqual(t, "epoch end", denseSet, sparseSet)
			assertEngineMatchesDense(t, "epoch end", eng, db)
			if eng.Frozen() != db.Frozen() {
				t.Fatalf("budget %d epoch %d: frozen %v vs dense %v", budget, epoch, eng.Frozen(), db.Frozen())
			}
		}
	}
}

// TestTrackedTrainerCrossRestore proves state captured from the dense
// constraint resumes the engine bit-identically, and vice versa.
func TestTrackedTrainerCrossRestore(t *testing.T) {
	denseSet, _, _ := makeSet()
	sparseSet, sfc1, sfc2 := makeSet()
	db := New(denseSet, Config{Budget: 9, FreezeAfterEpoch: 0})
	eng := NewTrackedTrainer(sparseSet, Config{Budget: 9, FreezeAfterEpoch: 0})
	if _, err := eng.Virtualize(sfc1.W, sfc1.Out); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Virtualize(sfc2.W, sfc2.Out); err != nil {
		t.Fatal(err)
	}
	sgd := optim.NewSGD(0.3)

	// Run both three steps, freeze, then three more.
	for step := 0; step < 3; step++ {
		fillGrads(denseSet, step)
		fillGrads(sparseSet, step)
		syncTrackedGrads(eng, sparseSet)
		sgd.Step(denseSet)
		db.Apply()
		eng.Apply(0.3)
	}
	db.MaybeFreezeAtEpochEnd(0)
	eng.MaybeFreezeAtEpochEnd(0)
	for step := 3; step < 6; step++ {
		fillGrads(denseSet, step)
		fillGrads(sparseSet, step)
		syncTrackedGrads(eng, sparseSet)
		sgd.Step(denseSet)
		db.Apply()
		eng.Apply(0.3)
	}
	eng.Densify()
	assertSetsBitEqual(t, "pre-restore", denseSet, sparseSet)

	// Dense -> sparse: a fresh engine over the dense run's values and state.
	resumeSet, rfc1, rfc2 := makeSet()
	resumeSet.Restore(denseSet.Snapshot())
	eng2 := NewTrackedTrainer(resumeSet, Config{Budget: 9, FreezeAfterEpoch: 0})
	if _, err := eng2.Virtualize(rfc1.W, rfc1.Out); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Virtualize(rfc2.W, rfc2.Out); err != nil {
		t.Fatal(err)
	}
	if err := eng2.RestoreState(db.State()); err != nil {
		t.Fatal(err)
	}
	assertEngineStateMatchesDense(t, "dense->sparse restore", eng2, db)

	// Sparse -> dense: a fresh dense constraint over the engine's state.
	denseSet2, _, _ := makeSet()
	eng.Densify()
	denseSet2.Restore(sparseSet.Snapshot())
	db2 := New(denseSet2, Config{Budget: 9, FreezeAfterEpoch: 0})
	if err := db2.RestoreState(eng.State()); err != nil {
		t.Fatal(err)
	}

	// Continue both pairs in lockstep and compare values.
	for step := 6; step < 9; step++ {
		fillGrads(denseSet, step)
		fillGrads(resumeSet, step)
		fillGrads(denseSet2, step)
		syncTrackedGrads(eng2, resumeSet)
		sgd.Step(denseSet)
		db.Apply()
		eng2.Apply(0.3)
		sgd.Step(denseSet2)
		db2.Apply()
	}
	eng2.Densify()
	assertSetsBitEqual(t, "resumed sparse vs dense", denseSet, resumeSet)
	assertSetsBitEqual(t, "resumed dense vs dense", denseSet, denseSet2)
}
