package core

import (
	"testing"

	"dropback/internal/optim"
)

// maskIndices converts a boolean mask into its ascending list of set global
// indices — the reference AppendTrackedIndices is checked against.
func maskIndices(mask []bool) []int32 {
	var out []int32
	for i, m := range mask {
		if m {
			out = append(out, int32(i))
		}
	}
	return out
}

func assertIndicesEqual(t *testing.T, ctx string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d indices, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: idx[%d] = %d, want %d", ctx, i, got[i], want[i])
		}
		if i > 0 && got[i] <= got[i-1] {
			t.Fatalf("%s: idx[%d]=%d not ascending after %d", ctx, i, got[i], got[i-1])
		}
	}
}

// TestDropBackAppendTrackedIndices: the list must mirror Mask() exactly —
// ascending, budget-length after a selection, and re-derived after the set
// churns. Both ends of a multi-node frozen exchange build their wire layout
// from this list, so mask/list agreement is what makes the no-index-side-band
// frames decodable.
func TestDropBackAppendTrackedIndices(t *testing.T) {
	set, _, _ := makeSet()
	db := New(set, Config{Budget: 7})

	perturbAll(set, 0.01)
	db.Apply()
	idx := db.AppendTrackedIndices(nil)
	assertIndicesEqual(t, "first selection", idx, maskIndices(db.Mask()))
	if len(idx) != 7 {
		t.Fatalf("tracked %d indices, want the budget 7", len(idx))
	}

	// Push a different set of weights far from init so the selection churns,
	// then re-derive.
	perturb(set, map[int]float32{0: 5, 11: 5, 23: 5, 37: 5, 41: 5, 45: 5, 50: 5})
	db.Apply()
	idx2 := db.AppendTrackedIndices(nil)
	assertIndicesEqual(t, "after churn", idx2, maskIndices(db.Mask()))

	// Append semantics: an existing prefix is preserved.
	pre := []int32{-1, -2}
	got := db.AppendTrackedIndices(pre)
	if got[0] != -1 || got[1] != -2 {
		t.Fatalf("prefix clobbered: %v", got[:2])
	}
	assertIndicesEqual(t, "appended tail", got[2:], idx2)
}

// TestDropBackAppendTrackedIndicesFrozen covers both freeze orders: freezing
// after Apply must pin the latest selection, and freezing before any Apply
// must select once rather than freeze an empty set.
func TestDropBackAppendTrackedIndicesFrozen(t *testing.T) {
	set, _, _ := makeSet()
	db := New(set, Config{Budget: 5})
	perturbAll(set, 0.02)
	db.Apply()
	before := db.AppendTrackedIndices(nil)
	db.Freeze()
	assertIndicesEqual(t, "freeze pins latest selection", db.AppendTrackedIndices(nil), before)

	fresh, _, _ := makeSet()
	db2 := New(fresh, Config{Budget: 5})
	perturbAll(fresh, 0.02)
	db2.Freeze() // no Apply yet: must select, not freeze the empty set
	idx := db2.AppendTrackedIndices(nil)
	if len(idx) != 5 {
		t.Fatalf("freeze-before-apply tracked %d indices, want 5", len(idx))
	}
	assertIndicesEqual(t, "freeze before apply", idx, maskIndices(db2.Mask()))
}

// TestTrackedTrainerAppendTrackedIndicesMatchesDense drives the sparse
// engine and the dense constraint in lockstep and requires identical index
// lists at every step — through live selection, the freeze, and the frozen
// CSR-walking O(k) path.
func TestTrackedTrainerAppendTrackedIndicesMatchesDense(t *testing.T) {
	denseSet, _, _ := makeSet()
	sparseSet, sfc1, sfc2 := makeSet()
	db := New(denseSet, Config{Budget: 9, FreezeAfterEpoch: 0})
	eng := NewTrackedTrainer(sparseSet, Config{Budget: 9, FreezeAfterEpoch: 0})
	if _, err := eng.Virtualize(sfc1.W, sfc1.Out); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Virtualize(sfc2.W, sfc2.Out); err != nil {
		t.Fatal(err)
	}
	sgd := optim.NewSGD(0.3)

	compare := func(ctx string) {
		t.Helper()
		d := db.AppendTrackedIndices(nil)
		assertIndicesEqual(t, ctx+" (dense vs mask)", d, maskIndices(db.Mask()))
		assertIndicesEqual(t, ctx+" (engine vs dense)", eng.AppendTrackedIndices(nil), d)
	}

	for step := 0; step < 3; step++ {
		fillGrads(denseSet, step)
		fillGrads(sparseSet, step)
		syncTrackedGrads(eng, sparseSet)
		sgd.Step(denseSet)
		db.Apply()
		eng.Apply(0.3)
		compare("live step")
	}
	db.MaybeFreezeAtEpochEnd(0)
	eng.MaybeFreezeAtEpochEnd(0)
	compare("at freeze")
	for step := 3; step < 6; step++ {
		fillGrads(denseSet, step)
		fillGrads(sparseSet, step)
		syncTrackedGrads(eng, sparseSet)
		sgd.Step(denseSet)
		db.Apply()
		eng.Apply(0.3)
		compare("frozen step")
	}
}
