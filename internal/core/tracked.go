package core

import (
	"fmt"
	"math"
	"sort"

	"dropback/internal/nn"
	"dropback/internal/optim"
)

// TrackedTensor is the CSR view of one virtualized parameter tensor: only
// the tracked deltas are stored (flat index + value over the tensor's own
// index space), everything else is regenerated from the init stream on
// demand. Rows/RowLen give the matrix shape the sparse kernels walk
// (Linear: Out×In, Conv2D: OutC×(InC·KH·KW)).
type TrackedTensor struct {
	P      *nn.Param
	Rows   int
	RowLen int
	// RowPtr/Idx/Val are the CSR arrays: Idx holds ascending flat indices
	// into the tensor, Val the tracked values, RowPtr the per-row spans.
	RowPtr []int32
	Idx    []int32
	Val    []float32
	// TGrad receives the tracked-set gradients once the selection is
	// frozen (aligned with Idx); nil before that — pre-freeze every weight
	// is a candidate, so gradients stay dense in P.Grad.
	TGrad []float32

	// Double buffers for the per-step reselection rebuild; freed at freeze.
	idx2 []int32
	val2 []float32
}

// FillRow materializes one row of the virtual dense tensor into dst
// (len(dst) == RowLen): tracked values verbatim, gaps regenerated from the
// init stream — bit-equal to the dense row by the PR 7 argument.
func (t *TrackedTensor) FillRow(dst []float32, r int) {
	base := r * t.RowLen
	p := 0
	for k := t.RowPtr[r]; k < t.RowPtr[r+1]; k++ {
		c := int(t.Idx[k]) - base
		for ; p < c; p++ {
			dst[p] = t.P.Init.Regenerate(base + p)
		}
		dst[c] = t.Val[k]
		p = c + 1
	}
	for ; p < t.RowLen; p++ {
		dst[p] = t.P.Init.Regenerate(base + p)
	}
}

func (t *TrackedTensor) rebuildRowPtr() {
	k := 0
	for r := 0; r < t.Rows; r++ {
		t.RowPtr[r] = int32(k)
		limit := (r + 1) * t.RowLen
		for k < len(t.Idx) && int(t.Idx[k]) < limit {
			k++
		}
	}
	t.RowPtr[t.Rows] = int32(len(t.Idx))
}

// TrackedTrainer is the sparse-native counterpart of DropBack + dense SGD:
// one Apply call performs the SGD update, the top-k reselection, and the
// untracked regeneration, but stores and updates only the tracked set for
// virtualized (large) tensors. Small tensors (biases, BN parameters) stay
// dense in the model and are updated in place.
//
// The arithmetic is arranged to be bit-identical to the dense pipeline
// (sgd.Step then DropBack.Apply): the update is optim.TrackedSGD's
// v + (-lr)·g (the dense AXPY expression), scores are u − Regenerate(e)
// exactly as VisitDiffFromInit computes them, and selection reuses
// SelectTopKInto. Pre-freeze the candidate set is every weight, so scoring
// remains O(n) and gradients stay dense; after Freeze the engine keeps only
// CSR values + tracked gradients + small tensors — the steady state whose
// byte count WeightStateBytes reports and the benchmarks gate.
type TrackedTrainer struct {
	set *nn.ParamSet
	cfg Config
	sgd optim.TrackedSGD

	// big is aligned with set.Params(); nil entries are dense-updated
	// small tensors.
	big []*TrackedTensor

	scores   []float32
	mask     []bool // nil once frozen
	prevMask []bool // nil once frozen
	havePrev bool
	frozen   bool

	// smallMask holds per-small-tensor tracked masks once frozen (the
	// global n-mask is freed at freeze — big-tensor membership is the CSR
	// index array itself).
	smallMask     [][]bool
	frozenTracked int

	stepCount     int
	swapHistory   []int
	swapSummary   SwapSummary
	regenerations int64
	trackedWrites int64
}

// NewTrackedTrainer builds the sparse-native training engine over the given
// parameter set. Only the plain DropBack path is supported: the ablation
// switches (DryRun, ZeroUntracked, SelectByMagnitude, PerLayerBudget) stay
// on the dense trainer.
func NewTrackedTrainer(set *nn.ParamSet, cfg Config) *TrackedTrainer {
	if cfg.Budget <= 0 {
		panic(fmt.Sprintf("core: budget must be positive, got %d", cfg.Budget))
	}
	if cfg.Budget > set.Total() {
		cfg.Budget = set.Total()
	}
	if cfg.DryRun || cfg.ZeroUntracked || cfg.SelectByMagnitude || cfg.PerLayerBudget {
		panic("core: tracked trainer supports the plain DropBack path only")
	}
	n := set.Total()
	return &TrackedTrainer{
		set:       set,
		cfg:       cfg,
		big:       make([]*TrackedTensor, len(set.Params())),
		smallMask: make([][]bool, len(set.Params())),
		scores:    make([]float32, n),
		mask:      make([]bool, n),
		prevMask:  make([]bool, n),
	}
}

// Config returns the configuration the engine was built with.
func (d *TrackedTrainer) Config() Config { return d.cfg }

// Budget returns k, the tracked-weight budget.
func (d *TrackedTrainer) Budget() int { return d.cfg.Budget }

// CompressionRatio returns total parameters divided by the budget.
func (d *TrackedTrainer) CompressionRatio() float64 {
	return float64(d.set.Total()) / float64(d.cfg.Budget)
}

// Virtualize registers one parameter tensor for CSR storage, viewed as a
// rows×(Len/rows) matrix. The current dense values seed the tracked set:
// every element whose bits differ from its regenerated init value becomes a
// tracked delta (a fresh model seeds an empty CSR). Must be called before
// the first Apply; returns the CSR handle the sparse kernels close over.
func (d *TrackedTrainer) Virtualize(p *nn.Param, rows int) (*TrackedTensor, error) {
	idx := -1
	for i, q := range d.set.Params() {
		if q == p {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("core: parameter %q is not in the engine's set", p.Name)
	}
	if d.big[idx] != nil {
		return nil, fmt.Errorf("core: parameter %q virtualized twice", p.Name)
	}
	if rows <= 0 || p.Len()%rows != 0 {
		return nil, fmt.Errorf("core: parameter %q (%d weights) cannot be viewed as %d rows", p.Name, p.Len(), rows)
	}
	t := &TrackedTensor{P: p, Rows: rows, RowLen: p.Len() / rows, RowPtr: make([]int32, rows+1)}
	for e, v := range p.Value.Data {
		if math.Float32bits(v) != math.Float32bits(p.Init.Regenerate(e)) {
			t.Idx = append(t.Idx, int32(e))
			t.Val = append(t.Val, v)
		}
	}
	t.rebuildRowPtr()
	d.big[idx] = t
	return t, nil
}

func (d *TrackedTrainer) recordSwaps(swaps int) {
	d.swapSummary.Add(swaps)
	if !d.cfg.DisableSwapHistory {
		d.swapHistory = append(d.swapHistory, swaps)
	}
}

// Apply performs one optimizer step under the DropBack constraint: SGD
// update, accumulated-gradient scoring, top-k reselection, and untracked
// regeneration — all fused so untracked dense values are never stored for
// virtualized tensors. It returns the number of weights that entered the
// tracked set this step.
func (d *TrackedTrainer) Apply(lr float32) int {
	d.sgd.LR = lr
	d.stepCount++
	if d.frozen {
		d.applyFrozen()
		d.recordSwaps(0)
		return 0
	}
	params := d.set.Params()
	// Pass A: compute every candidate's post-update score. For virtualized
	// tensors the candidate value is read from the CSR merge walk (tracked
	// value or regenerated gap); the updated value u is discarded — pass B
	// recomputes it for the winners, which is exact because the expression
	// is deterministic.
	for i, p := range params {
		base := d.set.Offset(i)
		if t := d.big[i]; t != nil {
			g := p.Grad.Data
			k := 0
			for e := 0; e < p.Len(); e++ {
				r := p.Init.Regenerate(e)
				v := r
				if k < len(t.Idx) && int(t.Idx[k]) == e {
					v = t.Val[k]
					k++
				}
				u := d.sgd.Update(v, g[e])
				diff := u - r
				if diff < 0 {
					diff = -diff
				}
				d.scores[base+e] = diff
			}
		} else {
			d.sgd.StepTracked(p.Value.Data, p.Grad.Data)
			for e, v := range p.Value.Data {
				diff := v - p.Init.Regenerate(e)
				if diff < 0 {
					diff = -diff
				}
				d.scores[base+e] = diff
			}
		}
	}
	SelectTopKInto(d.mask, d.scores, d.cfg.Budget, d.cfg.Strategy)
	swaps := 0
	if d.havePrev {
		for i, m := range d.mask {
			if m && !d.prevMask[i] {
				swaps++
			}
		}
	}
	d.recordSwaps(swaps)
	// Pass B: commit the new selection. Virtualized tensors rebuild their
	// CSR into the double buffer (winners get their updated value, computed
	// from the old CSR walk); small tensors regenerate their untracked
	// entries in place, exactly like the dense regenerateUntracked.
	for i, p := range params {
		base := d.set.Offset(i)
		if t := d.big[i]; t != nil {
			g := p.Grad.Data
			idx2 := t.idx2[:0]
			val2 := t.val2[:0]
			k := 0
			for e := 0; e < p.Len(); e++ {
				if !d.mask[base+e] {
					continue
				}
				for k < len(t.Idx) && int(t.Idx[k]) < e {
					k++
				}
				v := float32(0)
				if k < len(t.Idx) && int(t.Idx[k]) == e {
					v = t.Val[k]
					k++
				} else {
					v = p.Init.Regenerate(e)
				}
				idx2 = append(idx2, int32(e))
				val2 = append(val2, d.sgd.Update(v, g[e]))
			}
			t.idx2, t.val2 = t.Idx, t.Val
			t.Idx, t.Val = idx2, val2
			t.rebuildRowPtr()
			d.trackedWrites += int64(len(t.Idx))
			d.regenerations += int64(p.Len() - len(t.Idx))
		} else {
			for e := range p.Value.Data {
				if d.mask[base+e] {
					d.trackedWrites++
					continue
				}
				p.Value.Data[e] = p.Init.Regenerate(e)
				d.regenerations++
			}
		}
	}
	d.mask, d.prevMask = d.prevMask, d.mask
	d.havePrev = true
	return swaps
}

// applyFrozen updates the fixed tracked set only: CSR values from the
// tracked gradients the sparse backward kernels produced, small tensors
// densely with regeneration of their untracked entries.
func (d *TrackedTrainer) applyFrozen() {
	for i, p := range d.set.Params() {
		if t := d.big[i]; t != nil {
			d.sgd.StepTracked(t.Val, t.TGrad)
			d.trackedWrites += int64(len(t.Idx))
			d.regenerations += int64(p.Len() - len(t.Idx))
			continue
		}
		d.sgd.StepTracked(p.Value.Data, p.Grad.Data)
		m := d.smallMask[i]
		for e := range p.Value.Data {
			if m[e] {
				d.trackedWrites++
				continue
			}
			p.Value.Data[e] = p.Init.Regenerate(e)
			d.regenerations++
		}
	}
}

// Freeze fixes the tracked set from this point on, switching the engine to
// its steady state: per-big-tensor tracked gradients replace dense ones,
// the global masks are freed, and selection never runs again.
func (d *TrackedTrainer) Freeze() {
	if d.frozen {
		return
	}
	if !d.havePrev {
		// No selection yet: score the current effective values so the
		// frozen set is the present top-k rather than the empty set.
		for i, p := range d.set.Params() {
			base := d.set.Offset(i)
			if t := d.big[i]; t != nil {
				for e := base; e < base+p.Len(); e++ {
					d.scores[e] = 0
				}
				for k, fi := range t.Idx {
					e := int(fi)
					diff := t.Val[k] - p.Init.Regenerate(e)
					if diff < 0 {
						diff = -diff
					}
					d.scores[base+e] = diff
				}
			} else {
				for e, v := range p.Value.Data {
					diff := v - p.Init.Regenerate(e)
					if diff < 0 {
						diff = -diff
					}
					d.scores[base+e] = diff
				}
			}
		}
		SelectTopKInto(d.mask, d.scores, d.cfg.Budget, d.cfg.Strategy)
		copy(d.prevMask, d.mask)
		d.havePrev = true
	} else {
		copy(d.mask, d.prevMask)
	}
	d.frozen = true
	d.freezeTransition()
}

// freezeTransition converts the masked representation into the steady-state
// one: big tensors rebuild their CSR from d.mask (keeping current effective
// values) and gain TGrad; small tensors keep a per-tensor mask copy; the
// global masks and double buffers are released.
func (d *TrackedTrainer) freezeTransition() {
	count := 0
	for i, p := range d.set.Params() {
		base := d.set.Offset(i)
		if t := d.big[i]; t != nil {
			idx2 := t.idx2[:0]
			val2 := t.val2[:0]
			k := 0
			for e := 0; e < p.Len(); e++ {
				if !d.mask[base+e] {
					continue
				}
				for k < len(t.Idx) && int(t.Idx[k]) < e {
					k++
				}
				v := float32(0)
				if k < len(t.Idx) && int(t.Idx[k]) == e {
					v = t.Val[k]
					k++
				} else {
					v = p.Init.Regenerate(e)
				}
				idx2 = append(idx2, int32(e))
				val2 = append(val2, v)
			}
			t.Idx, t.Val = idx2, val2
			t.idx2, t.val2 = nil, nil
			t.rebuildRowPtr()
			t.TGrad = make([]float32, len(t.Idx))
			count += len(t.Idx)
		} else {
			m := make([]bool, p.Len())
			for e := range m {
				if d.mask[base+e] {
					m[e] = true
					count++
				}
			}
			d.smallMask[i] = m
		}
	}
	d.frozenTracked = count
	d.mask, d.prevMask = nil, nil
}

// Frozen reports whether the tracked set is frozen.
func (d *TrackedTrainer) Frozen() bool { return d.frozen }

// MaybeFreezeAtEpochEnd freezes the tracked set if the configured freeze
// epoch has just completed.
func (d *TrackedTrainer) MaybeFreezeAtEpochEnd(epoch int) {
	if !d.frozen && d.cfg.FreezeAfterEpoch >= 0 && epoch >= d.cfg.FreezeAfterEpoch {
		d.Freeze()
	}
}

// Densify writes every virtualized tensor's dense values (tracked values
// over regenerated gaps) back into the model's parameter tensors — used at
// epoch boundaries so evaluation, best-snapshot capture, and checkpoints
// see exactly the values the dense trainer would hold.
func (d *TrackedTrainer) Densify() {
	for i := range d.set.Params() {
		t := d.big[i]
		if t == nil {
			continue
		}
		data := t.P.Value.Data
		for r := 0; r < t.Rows; r++ {
			t.FillRow(data[r*t.RowLen:(r+1)*t.RowLen], r)
		}
	}
}

// Mask returns a copy of the current tracked-set mask over global indices,
// following the same convention as DropBack.Mask.
func (d *TrackedTrainer) Mask() []bool {
	out := make([]bool, d.set.Total())
	if !d.frozen {
		src := d.mask
		if d.havePrev {
			src = d.prevMask
		}
		copy(out, src)
		return out
	}
	for i, p := range d.set.Params() {
		base := d.set.Offset(i)
		if t := d.big[i]; t != nil {
			for _, fi := range t.Idx {
				out[base+int(fi)] = true
			}
		} else {
			copy(out[base:base+p.Len()], d.smallMask[i])
		}
	}
	return out
}

// TrackedCount returns the number of currently tracked weights without
// allocating.
func (d *TrackedTrainer) TrackedCount() int {
	if d.frozen {
		return d.frozenTracked
	}
	src := d.mask
	if d.havePrev {
		src = d.prevMask
	}
	n := 0
	for _, m := range src {
		if m {
			n++
		}
	}
	return n
}

// AppendTrackedIndices appends the ascending global indices of the current
// tracked set to dst and returns the extended slice. Pre-freeze it scans the
// live mask like DropBack.AppendTrackedIndices; once frozen it walks the CSR
// index arrays and small-tensor masks directly — O(k) work with no dense
// n-length scan, the extraction the tracked-delta wire frames are built
// from. Ascending order holds because parameters are visited in registration
// order and each CSR's Idx array is ascending.
func (d *TrackedTrainer) AppendTrackedIndices(dst []int32) []int32 {
	if !d.frozen {
		src := d.mask
		if d.havePrev {
			src = d.prevMask
		}
		for i, m := range src {
			if m {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for i, p := range d.set.Params() {
		base := int32(d.set.Offset(i))
		if t := d.big[i]; t != nil {
			for _, fi := range t.Idx {
				dst = append(dst, base+fi)
			}
			continue
		}
		for e := 0; e < p.Len(); e++ {
			if d.smallMask[i][e] {
				dst = append(dst, base+int32(e))
			}
		}
	}
	return dst
}

// AccumulatedGradients returns a copy of the most recent score vector. The
// final pre-freeze scores are retained after Freeze for telemetry parity
// with the dense constraint; they are not part of WeightStateBytes.
func (d *TrackedTrainer) AccumulatedGradients() []float32 {
	out := make([]float32, len(d.scores))
	copy(out, d.scores)
	return out
}

// SwapHistory returns the per-step tracked-set entry counts (empty when
// Config.DisableSwapHistory is set).
func (d *TrackedTrainer) SwapHistory() []int {
	out := make([]int, len(d.swapHistory))
	copy(out, d.swapHistory)
	return out
}

// Swaps returns the bounded swap-telemetry summary.
func (d *TrackedTrainer) Swaps() SwapSummary { return d.swapSummary }

// Regenerations returns the total untracked-weight regeneration count.
func (d *TrackedTrainer) Regenerations() int64 { return d.regenerations }

// TrackedWrites returns the total tracked-weight writes retained.
func (d *TrackedTrainer) TrackedWrites() int64 { return d.trackedWrites }

// RetentionByParam returns the tracked count for every parameter tensor.
func (d *TrackedTrainer) RetentionByParam() []LayerRetention {
	out := make([]LayerRetention, 0, len(d.set.Params()))
	for i, p := range d.set.Params() {
		base := d.set.Offset(i)
		r := LayerRetention{Name: p.Name, Total: p.Len()}
		switch {
		case d.frozen && d.big[i] != nil:
			r.Retained = len(d.big[i].Idx)
		case d.frozen:
			for _, m := range d.smallMask[i] {
				if m {
					r.Retained++
				}
			}
		default:
			src := d.mask
			if d.havePrev {
				src = d.prevMask
			}
			for e := 0; e < p.Len(); e++ {
				if src[base+e] {
					r.Retained++
				}
			}
		}
		out = append(out, r)
	}
	return out
}

// RetentionByLayer aggregates RetentionByParam by layer name.
func (d *TrackedTrainer) RetentionByLayer() []LayerRetention {
	return aggregateRetention(d.RetentionByParam())
}

// WeightStateBytes reports the engine's steady-state weight-state size: CSR
// arrays plus tracked gradients for virtualized tensors, dense values +
// gradients + mask for small tensors. After Freeze this scales with the
// budget k (plus the small tensors), not with n — the measured claim
// BENCH_train.json gates. The retained telemetry score vector and the
// model's host-side dense tensors (used only at epoch boundaries) are
// deliberately excluded; DESIGN.md §11 spells out the accounting.
func (d *TrackedTrainer) WeightStateBytes() int64 {
	var b int64
	for i, p := range d.set.Params() {
		if t := d.big[i]; t != nil {
			b += int64(len(t.Val)+len(t.TGrad))*4 + int64(len(t.Idx))*4 + int64(len(t.RowPtr))*4
			b += int64(cap(t.idx2))*4 + int64(cap(t.val2))*4
		} else {
			b += int64(p.Len()) * 8 // dense value + gradient
			if m := d.smallMask[i]; m != nil {
				b += int64(len(m))
			}
		}
	}
	if !d.frozen {
		// Pre-freeze every weight is a candidate: dense gradients and the
		// global masks are part of the working state.
		for i, p := range d.set.Params() {
			if d.big[i] != nil {
				b += int64(p.Len()) * 4 // dense gradient
			}
		}
		b += 2 * int64(d.set.Total()) // mask + prevMask
	}
	return b
}

// DenseWeightStateBytes is the dense trainer's equivalent: every weight
// stores a value and a gradient.
func (d *TrackedTrainer) DenseWeightStateBytes() int64 {
	return int64(d.set.Total()) * 8
}

// State captures the engine's resumable state in the same form as
// DropBack.State, so checkpoints cross-resume between the dense and sparse
// trainers.
func (d *TrackedTrainer) State() State {
	st := State{
		Frozen:        d.frozen,
		HaveSelection: d.havePrev,
		StepCount:     d.stepCount,
		Regenerations: d.regenerations,
		TrackedWrites: d.trackedWrites,
		Swaps:         d.swapSummary,
	}
	if d.havePrev {
		st.Mask = d.Mask()
	}
	return st
}

// RestoreState rewinds the engine to a previously captured state. The
// model's dense parameter values must already hold the checkpointed values
// (the trainer restores them first); the CSR arrays are rebuilt from them
// at the masked indices, and every untracked virtualized value is verified
// to be bit-equal to its regenerated init — the invariant both trainers
// maintain.
func (d *TrackedTrainer) RestoreState(st State) error {
	if st.HaveSelection && len(st.Mask) != d.set.Total() {
		return fmt.Errorf("core: state mask covers %d weights, parameter space has %d", len(st.Mask), d.set.Total())
	}
	if d.mask == nil {
		n := d.set.Total()
		d.mask = make([]bool, n)
		d.prevMask = make([]bool, n)
	}
	d.frozen = st.Frozen
	d.havePrev = st.HaveSelection
	d.stepCount = st.StepCount
	d.regenerations = st.Regenerations
	d.trackedWrites = st.TrackedWrites
	d.swapSummary = st.Swaps
	if len(d.swapHistory) > st.Swaps.Steps {
		d.swapHistory = d.swapHistory[:st.Swaps.Steps]
	}
	if !st.HaveSelection {
		for i := range d.mask {
			d.mask[i] = false
			d.prevMask[i] = false
		}
		for i := range d.big {
			t := d.big[i]
			if t == nil {
				continue
			}
			t.Idx = t.Idx[:0]
			t.Val = t.Val[:0]
			for e, v := range t.P.Value.Data {
				if math.Float32bits(v) != math.Float32bits(t.P.Init.Regenerate(e)) {
					t.Idx = append(t.Idx, int32(e))
					t.Val = append(t.Val, v)
				}
			}
			t.rebuildRowPtr()
		}
		return nil
	}
	copy(d.mask, st.Mask)
	copy(d.prevMask, st.Mask)
	for i, p := range d.set.Params() {
		base := d.set.Offset(i)
		t := d.big[i]
		if t == nil {
			continue
		}
		t.Idx = t.Idx[:0]
		t.Val = t.Val[:0]
		for e, v := range p.Value.Data {
			if st.Mask[base+e] {
				t.Idx = append(t.Idx, int32(e))
				t.Val = append(t.Val, v)
				continue
			}
			if math.Float32bits(v) != math.Float32bits(p.Init.Regenerate(e)) {
				return fmt.Errorf("core: untracked weight %s[%d] deviates from its regenerated init", p.Name, e)
			}
		}
		t.rebuildRowPtr()
	}
	if st.Frozen {
		d.freezeTransition()
	} else {
		d.smallMask = make([][]bool, len(d.set.Params()))
		d.frozenTracked = 0
	}
	return nil
}

// aggregateRetention merges per-parameter retention into per-layer rows,
// shared by DropBack and TrackedTrainer.
func aggregateRetention(perParam []LayerRetention) []LayerRetention {
	byLayer := map[string]*LayerRetention{}
	order := make([]string, 0, len(perParam))
	for _, r := range perParam {
		layer := r.Name
		if i := lastSlash(layer); i >= 0 {
			layer = layer[:i]
		}
		agg, ok := byLayer[layer]
		if !ok {
			agg = &LayerRetention{Name: layer}
			byLayer[layer] = agg
			order = append(order, layer)
		}
		agg.Total += r.Total
		agg.Retained += r.Retained
	}
	sort.Strings(order)
	out := make([]LayerRetention, 0, len(order))
	for _, n := range order {
		out = append(out, *byLayer[n])
	}
	return out
}
