package core

import (
	"fmt"

	"dropback/internal/nn"
)

// Config parameterizes a DropBack run.
type Config struct {
	// Budget is k, the number of weights whose updates are tracked. All
	// other weights are regenerated to their initialization values after
	// every step.
	Budget int
	// FreezeAfterEpoch, if >= 0, freezes the tracked set at the end of
	// that (zero-based) epoch: afterwards no new weights may enter the set
	// (the paper's "freeze the tracked parameter set after a small number
	// of epochs"). Negative means never freeze.
	FreezeAfterEpoch int
	// Strategy selects the top-k engine (quickselect or bounded min-heap).
	Strategy TopKStrategy
	// DryRun observes which weights would be tracked without constraining
	// the network — used to reproduce Fig 2's baseline-SGD telemetry.
	DryRun bool
	// ZeroUntracked resets untracked weights to zero instead of their
	// regenerated initialization values — the ablation of §2.1, where the
	// paper reports zeroing cuts achievable compression from 60× to 2×
	// ("preserving the scaffolding provided by the initialization values
	// is critical").
	ZeroUntracked bool
	// SelectByMagnitude scores weights by |W_t| rather than accumulated
	// gradient |W_t − W_0| — the "naïve approach" §2.1 argues against.
	SelectByMagnitude bool
	// PerLayerBudget allocates the budget proportionally to each parameter
	// tensor's size and selects top-k within each tensor, instead of the
	// paper's single global competition. Table 2 shows the global scheme
	// deliberately skews retention toward later layers; this ablation
	// quantifies what that freedom is worth.
	PerLayerBudget bool
	// DisableSwapHistory drops the per-step swap series (Fig 2's telemetry),
	// keeping only the O(1) SwapSummary. Long-running jobs that never read
	// SwapHistory() set this to keep constraint memory independent of step
	// count.
	DisableSwapHistory bool
}

// DropBack applies the paper's continuous-pruning constraint to a model's
// flat parameter space after every SGD update.
//
// The accumulated gradient of weight i is |W_t[i] − W_0[i]|: because
// untracked weights are regenerated to W_0 after every step, this single
// expression covers both cases of Algorithm 1 — for tracked weights it is
// the magnitude of the sum of all applied updates, and for a previously
// untracked weight it is exactly |α·∂f/∂w| from the current step, its bid
// to enter the tracked set.
type DropBack struct {
	cfg Config
	set *nn.ParamSet

	scores   []float32
	mask     []bool
	prevMask []bool
	havePrev bool
	frozen   bool

	// shares is the per-tensor budget scratch for the PerLayerBudget path,
	// reused across steps so selection stays allocation-free.
	shares []int

	// Telemetry.
	stepCount     int
	swapHistory   []int
	swapSummary   SwapSummary
	regenerations int64
	trackedWrites int64
}

// New builds a DropBack constraint over the given parameter set. Budget
// must be positive and is clamped to the parameter count.
func New(set *nn.ParamSet, cfg Config) *DropBack {
	if cfg.Budget <= 0 {
		panic(fmt.Sprintf("core: budget must be positive, got %d", cfg.Budget))
	}
	if cfg.Budget > set.Total() {
		cfg.Budget = set.Total()
	}
	n := set.Total()
	return &DropBack{
		cfg:      cfg,
		set:      set,
		scores:   make([]float32, n),
		mask:     make([]bool, n),
		prevMask: make([]bool, n),
	}
}

// Config returns the configuration the constraint was built with.
func (d *DropBack) Config() Config { return d.cfg }

// Budget returns k, the tracked-weight budget.
func (d *DropBack) Budget() int { return d.cfg.Budget }

// CompressionRatio returns total parameters divided by the budget — the
// "weight compression" column of the paper's tables.
func (d *DropBack) CompressionRatio() float64 {
	return float64(d.set.Total()) / float64(d.cfg.Budget)
}

// Apply enforces the DropBack constraint after an SGD update: it recomputes
// accumulated gradients, selects the top-k set (unless frozen), and
// regenerates every untracked weight to its initialization value. It
// returns the number of weights that entered the tracked set this step.
func (d *DropBack) Apply() int {
	d.stepCount++
	if d.frozen {
		// Selection is fixed; only the regeneration of untracked weights
		// remains (their gradients no longer need to be computed at all —
		// the compute/energy saving the paper freezes for).
		if !d.cfg.DryRun {
			d.regenerateUntracked()
		}
		d.recordSwaps(0)
		return 0
	}
	d.computeScores()
	d.selectMask()
	swaps := 0
	if d.havePrev {
		for i, m := range d.mask {
			if m && !d.prevMask[i] {
				swaps++
			}
		}
	}
	d.recordSwaps(swaps)
	if !d.cfg.DryRun {
		d.regenerateUntracked()
	}
	d.mask, d.prevMask = d.prevMask, d.mask
	d.havePrev = true
	// After the swap, prevMask holds the current selection.
	return swaps
}

// recordSwaps folds one step's swap count into the O(1) summary and, unless
// the series is disabled, appends it to the full per-step history.
func (d *DropBack) recordSwaps(swaps int) {
	d.swapSummary.Add(swaps)
	if !d.cfg.DisableSwapHistory {
		d.swapHistory = append(d.swapHistory, swaps)
	}
}

// computeScores fills d.scores with |W_t − W_0| for every global index.
// Under the SelectByMagnitude ablation the score is |W_t| instead; the
// ZeroUntracked ablation also scores against zero, because zero is the
// reset point untracked weights accumulate from there.
func (d *DropBack) computeScores() {
	if d.cfg.SelectByMagnitude || d.cfg.ZeroUntracked {
		for i, p := range d.set.Params() {
			base := d.set.Offset(i)
			for e, v := range p.Value.Data {
				if v < 0 {
					v = -v
				}
				d.scores[base+e] = v
			}
		}
		return
	}
	d.set.VisitDiffFromInit(func(g int, diff float32) {
		d.scores[g] = diff
	})
}

// selectMask writes the current top-k selection into d.mask: one global
// competition by default, or per-tensor competitions under the
// PerLayerBudget ablation.
func (d *DropBack) selectMask() {
	if !d.cfg.PerLayerBudget {
		SelectTopKInto(d.mask, d.scores, d.cfg.Budget, d.cfg.Strategy)
		return
	}
	total := d.set.Total()
	remaining := d.cfg.Budget
	params := d.set.Params()
	if cap(d.shares) < len(params) {
		d.shares = make([]int, len(params))
	}
	shares := d.shares[:len(params)]
	for i, p := range params {
		// Proportional share, rounded down; the final tensor absorbs the
		// rounding drift so the overall budget is exact.
		share := d.cfg.Budget * p.Len() / total
		if i == len(params)-1 {
			share = remaining
		}
		if share > p.Len() {
			share = p.Len()
		}
		if share < 0 {
			share = 0
		}
		remaining -= share
		shares[i] = share
	}
	// If the final tensor could not absorb the full drift (its share was
	// clamped to its length), spill the surplus into earlier tensors with
	// headroom. Budget <= Total guarantees the headroom sum covers it, so
	// the overall allocation is exact rather than silently short.
	for i, p := range params {
		if remaining <= 0 {
			break
		}
		if head := p.Len() - shares[i]; head > 0 {
			give := head
			if give > remaining {
				give = remaining
			}
			shares[i] += give
			remaining -= give
		}
	}
	for i, p := range params {
		base := d.set.Offset(i)
		SelectTopKInto(d.mask[base:base+p.Len()], d.scores[base:base+p.Len()], shares[i], d.cfg.Strategy)
	}
}

// regenerateUntracked resets every weight outside d.mask to its regenerated
// initialization value (or zero under the ZeroUntracked ablation).
func (d *DropBack) regenerateUntracked() {
	for i, p := range d.set.Params() {
		base := d.set.Offset(i)
		for e := range p.Value.Data {
			if d.mask[base+e] {
				d.trackedWrites++
				continue
			}
			if d.cfg.ZeroUntracked {
				p.Value.Data[e] = 0
			} else {
				p.Value.Data[e] = p.Init.Regenerate(e)
			}
			d.regenerations++
		}
	}
}

// Freeze fixes the tracked set from this point on. If called before the
// first Apply, the initial selection happens on the next Apply and then
// freezes (mask would otherwise be empty).
func (d *DropBack) Freeze() {
	if !d.havePrev {
		// No selection yet: run one selection so the frozen set is the
		// current top-k rather than the empty set. The frozen path reads
		// d.mask directly, so select straight into it.
		d.computeScores()
		d.selectMask()
		copy(d.prevMask, d.mask)
		d.havePrev = true
	} else {
		// prevMask holds the latest selection; copy it into the active mask.
		copy(d.mask, d.prevMask)
	}
	d.frozen = true
}

// Frozen reports whether the tracked set is frozen.
func (d *DropBack) Frozen() bool { return d.frozen }

// MaybeFreezeAtEpochEnd freezes the tracked set if the configured freeze
// epoch has just completed. The trainer calls it after every epoch.
func (d *DropBack) MaybeFreezeAtEpochEnd(epoch int) {
	if !d.frozen && d.cfg.FreezeAfterEpoch >= 0 && epoch >= d.cfg.FreezeAfterEpoch {
		d.Freeze()
	}
}

// SwapSummary is the bounded form of the swap-history telemetry: the
// per-step series collapsed to four scalars. It is what checkpoints store —
// a long run's checkpoint no longer grows by one int per training step —
// and what recovery snapshots copy instead of the full series.
type SwapSummary struct {
	// Steps is the number of recorded steps (the series length).
	Steps int
	// Total is the sum of swaps over all recorded steps.
	Total int64
	// Max is the largest single-step swap count.
	Max int
	// Last is the most recent step's swap count.
	Last int
}

// Add folds one step's swap count into the summary.
func (s *SwapSummary) Add(swaps int) {
	s.Steps++
	s.Total += int64(swaps)
	if swaps > s.Max {
		s.Max = swaps
	}
	s.Last = swaps
}

// SummarizeSwaps collapses a full per-step swap series into its summary —
// the conversion applied when reading format-1 checkpoints that stored the
// whole series.
func SummarizeSwaps(series []int) SwapSummary {
	var s SwapSummary
	for _, v := range series {
		s.Add(v)
	}
	return s
}

// State is DropBack's resumable constraint state: everything Apply's
// behavior depends on beyond the weights themselves (which the caller
// checkpoints separately), plus the telemetry counters so a resumed run
// reports the same totals an uninterrupted run would.
type State struct {
	// Frozen and HaveSelection mirror the constraint's phase: whether the
	// tracked set is locked, and whether any selection has happened yet.
	Frozen        bool
	HaveSelection bool
	// Mask is the latest tracked-set selection (empty if none yet).
	Mask []bool
	// StepCount, Regenerations, TrackedWrites and Swaps restore the
	// telemetry counters. Swaps is the bounded summary of the swap series;
	// the full series stays in memory only (and only when enabled).
	StepCount     int
	Regenerations int64
	TrackedWrites int64
	Swaps         SwapSummary
}

// State captures the constraint's resumable state.
func (d *DropBack) State() State {
	st := State{
		Frozen:        d.frozen,
		HaveSelection: d.havePrev,
		StepCount:     d.stepCount,
		Regenerations: d.regenerations,
		TrackedWrites: d.trackedWrites,
		Swaps:         d.swapSummary,
	}
	if d.havePrev {
		st.Mask = d.Mask()
	}
	return st
}

// RestoreState rewinds the constraint to a previously captured state. The
// mask length must match the parameter space (or be empty when no selection
// had happened yet).
func (d *DropBack) RestoreState(st State) error {
	if st.HaveSelection && len(st.Mask) != d.set.Total() {
		return fmt.Errorf("core: state mask covers %d weights, parameter space has %d", len(st.Mask), d.set.Total())
	}
	d.frozen = st.Frozen
	d.havePrev = st.HaveSelection
	if st.HaveSelection {
		// After Apply the latest selection lives in prevMask; the frozen
		// path reads mask directly. Restore both so either path resumes
		// exactly where the captured run stood.
		copy(d.prevMask, st.Mask)
		copy(d.mask, st.Mask)
	} else {
		for i := range d.mask {
			d.mask[i] = false
			d.prevMask[i] = false
		}
	}
	d.stepCount = st.StepCount
	d.regenerations = st.Regenerations
	d.trackedWrites = st.TrackedWrites
	d.swapSummary = st.Swaps
	// The in-memory series is deterministic, so any prefix of it is exact:
	// a rollback (series longer than the restored step count) truncates to
	// the captured prefix; a resume into a fresh constraint (series shorter)
	// keeps what it has and the series covers post-resume steps only.
	if len(d.swapHistory) > st.Swaps.Steps {
		d.swapHistory = d.swapHistory[:st.Swaps.Steps]
	}
	return nil
}

// Mask returns a copy of the current tracked-set mask over global indices.
func (d *DropBack) Mask() []bool {
	src := d.mask
	if d.havePrev && !d.frozen {
		src = d.prevMask // latest selection lives in prevMask after Apply
	}
	out := make([]bool, len(src))
	copy(out, src)
	return out
}

// TrackedCount returns the number of currently tracked weights. It counts
// the live mask in place — the trainer polls this per step for the tracked
// gauge, so it must not copy the n-element mask.
func (d *DropBack) TrackedCount() int {
	src := d.mask
	if d.havePrev && !d.frozen {
		src = d.prevMask // latest selection lives in prevMask after Apply
	}
	n := 0
	for _, m := range src {
		if m {
			n++
		}
	}
	return n
}

// AppendTrackedIndices appends the ascending global indices of the current
// tracked set to dst and returns the extended slice. Every node of a
// multi-node run derives the identical list from its own (bit-identical)
// constraint state, which is what lets the frozen-phase wire frames carry
// k values with no index side-band.
func (d *DropBack) AppendTrackedIndices(dst []int32) []int32 {
	src := d.mask
	if d.havePrev && !d.frozen {
		src = d.prevMask // latest selection lives in prevMask after Apply
	}
	for i, m := range src {
		if m {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// AccumulatedGradients returns a copy of the most recent |W_t − W_0| score
// vector (Fig 1's distribution). Call after at least one Apply.
func (d *DropBack) AccumulatedGradients() []float32 {
	out := make([]float32, len(d.scores))
	copy(out, d.scores)
	return out
}

// SwapHistory returns the number of weights that entered the tracked set at
// each step (Fig 2's series). Empty when Config.DisableSwapHistory is set —
// use Swaps for the bounded summary.
func (d *DropBack) SwapHistory() []int {
	out := make([]int, len(d.swapHistory))
	copy(out, d.swapHistory)
	return out
}

// Swaps returns the bounded swap-telemetry summary, available regardless of
// whether the full series is kept.
func (d *DropBack) Swaps() SwapSummary { return d.swapSummary }

// Regenerations returns the total number of untracked-weight regenerations
// performed — each one replacing what would otherwise be an off-chip weight
// store+load pair (the energy model consumes this).
func (d *DropBack) Regenerations() int64 { return d.regenerations }

// TrackedWrites returns the total number of tracked-weight writes retained.
func (d *DropBack) TrackedWrites() int64 { return d.trackedWrites }

// LayerRetention describes how many of a parameter tensor's weights are in
// the tracked set — Table 2's per-layer breakdown.
type LayerRetention struct {
	Name     string
	Total    int
	Retained int
}

// Compression returns the per-layer compression ratio Total/Retained
// (infinite retention maps to 0 retained; reported as +Inf by the caller).
func (r LayerRetention) Compression() float64 {
	if r.Retained == 0 {
		return 0
	}
	return float64(r.Total) / float64(r.Retained)
}

// RetentionByParam returns the tracked count for every parameter tensor, in
// registration order.
func (d *DropBack) RetentionByParam() []LayerRetention {
	mask := d.Mask()
	out := make([]LayerRetention, 0, len(d.set.Params()))
	for i, p := range d.set.Params() {
		base := d.set.Offset(i)
		r := LayerRetention{Name: p.Name, Total: p.Len()}
		for e := 0; e < p.Len(); e++ {
			if mask[base+e] {
				r.Retained++
			}
		}
		out = append(out, r)
	}
	return out
}

// RetentionByLayer aggregates RetentionByParam by layer name (the parameter
// name up to the final '/'), sorted by name for stable output.
func (d *DropBack) RetentionByLayer() []LayerRetention {
	return aggregateRetention(d.RetentionByParam())
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
