// Sparse-native training: the mirror tree built by NewTrainingMirror runs
// forward AND backward passes straight off the engine's CSR weight state,
// regenerating untracked weights inside the kernel loops per minibatch. The
// model's dense weight tensors are never read during a training step — they
// are refreshed only at epoch boundaries via TrackedTrainer.Densify for
// evaluation and checkpointing.
//
// Correctness contract (the training half of the package contract): every
// activation, gradient, and parameter update is bit-identical to the dense
// trainer's. The forward kernels reuse the inference bit-identity argument
// (ops.go); the backward kernels replay the dense gradient kernels'
// per-element operation sequences — same accumulation order, same cleared
// accumulators, same zero skips on the same values — with weight rows
// materialized through TrackedTensor.FillRow instead of read from DRAM:
//
//   - Linear dX (dense tensor.MatMulInto(dy, W)): each element dx[i][j]
//     accumulates dy[i][p]·W[p][j] in ascending p from a cleared buffer,
//     skipping dy[i][p]==0. Hoisting p outward so each weight row is
//     materialized once reorders whole elements, never the operations
//     within one.
//   - Linear dW pre-freeze needs no weights at all, so the mirror calls the
//     exact dense kernels (MatMulTransAInto + AddInPlace). Post-freeze each
//     tracked element (r,c) folds dy[p][r]·x[p][c] in ascending p from zero,
//     skipping dy[p][r]==0 — the dense MatMulTransA element replayed alone.
//   - Conv dW is a per-sample MatMulTransBSlice (independent ascending dot
//     per element, no skip) reduced in ascending sample order; the tracked
//     replay folds those per-sample dots in the same order. dB always runs
//     the dense float64-sum code (biases stay dense).
//   - Conv dX (dense MatMulTransASlice) accumulates W[f][c]·dy[f][s] in
//     ascending f from a cleared buffer, skipping W[f][c]==0; the replay
//     hoists f outward and skips on the regenerated row's identical bits.
//
// Kernels run single-goroutine: the bit-identity already holds at any
// worker count for the dense layers, but the mirror's merge walks share one
// bounce buffer per layer and the sparse trainer rejects Workers>1 anyway.
package sparsenn

import (
	"fmt"

	"dropback/internal/core"
	"dropback/internal/nn"
	"dropback/internal/tensor"
)

// NewTrainingMirror builds a training-mode mirror of m.Net over the tracked
// engine: Linear and Conv2D layers are virtualized into CSR form and
// replaced by sparse train kernels, containers are rebuilt around them, and
// every other layer (activations, pooling, batch norm, dropout — anything
// whose parameters the engine keeps dense) is shared with the original tree
// so its internal state (BN statistics, dropout RNG) advances exactly as in
// a dense run. The mirror and m.Net must not run concurrently; the trainer
// uses the mirror for steps and the densified m.Net for evaluation.
func NewTrainingMirror(m *nn.Model, eng *core.TrackedTrainer) (nn.Layer, error) {
	return mirrorLayer(m.Net, eng)
}

func mirrorLayer(l nn.Layer, eng *core.TrackedTrainer) (nn.Layer, error) {
	switch t := l.(type) {
	case *nn.Sequential:
		children := make([]nn.Layer, 0, len(t.Layers()))
		for _, c := range t.Layers() {
			mc, err := mirrorLayer(c, eng)
			if err != nil {
				return nil, err
			}
			children = append(children, mc)
		}
		return nn.NewSequential(t.Name(), children...), nil
	case *nn.Residual:
		body, err := mirrorLayer(t.Body, eng)
		if err != nil {
			return nil, err
		}
		shortcut, err := mirrorLayer(t.Shortcut, eng)
		if err != nil {
			return nil, err
		}
		return nn.NewResidual(t.Name(), body, shortcut), nil
	case *nn.DenseBlock:
		units := make([]nn.Layer, 0, len(t.Units))
		for _, u := range t.Units {
			mu, err := mirrorLayer(u, eng)
			if err != nil {
				return nil, err
			}
			units = append(units, mu)
		}
		return nn.NewDenseBlock(t.Name(), t.InC, t.Growth, units...), nil
	case *nn.Linear:
		ct, err := eng.Virtualize(t.W, t.Out)
		if err != nil {
			return nil, err
		}
		return &trainLinear{l: t, t: ct, eng: eng, ws: tensor.NewWorkspace()}, nil
	case *nn.Conv2D:
		ct, err := eng.Virtualize(t.W, t.OutC)
		if err != nil {
			return nil, err
		}
		return &trainConv{l: t, t: ct, eng: eng, ws: tensor.NewWorkspace()}, nil
	default:
		// Parameter-free layers and small-parameter layers (BatchNorm,
		// PReLU, variational wrappers) stay dense: the engine updates their
		// parameters in place, and sharing the instance keeps stateful
		// layers (BN statistics, dropout RNG) in lockstep with a dense run.
		return l, nil
	}
}

// TrainStep is the sparse counterpart of nn.Model.Step: one forward/backward
// pass through the mirror tree, gradients left in the parameter Grad buffers
// (dense for small tensors and pre-freeze big tensors, TGrad for frozen big
// tensors). Loss and accuracy come from the model's own loss head so the
// numbers are bit-identical to the dense step.
func TrainStep(m *nn.Model, mirror nn.Layer, x *tensor.Tensor, labels []int) (loss, acc float64) {
	m.Set.ZeroGrads()
	logits := mirror.Forward(x, true)
	loss, acc = m.Loss.Forward(logits, labels)
	mirror.Backward(m.Loss.Backward())
	return loss, acc
}

// trainLinear is the training-mode sparse Linear: y = x Wᵀ + b with W in
// CSR + regeneration form, bit-identical forward and backward.
type trainLinear struct {
	l   *nn.Linear
	t   *core.TrackedTensor
	eng *core.TrackedTrainer
	ws  *tensor.Workspace
	x   *tensor.Tensor // cached forward input
}

func (s *trainLinear) Name() string { return s.l.Name() }

func (s *trainLinear) Params() []*nn.Param { return s.l.Params() }

func (s *trainLinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l := s.l
	if len(x.Shape) != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("sparsenn: linear %q expected (N,%d) input, got %v", l.Name(), l.In, x.Shape))
	}
	s.x = x
	n := x.Shape[0]
	y := s.ws.GetRaw("y", n, l.Out)
	wrow := s.ws.GetRaw("wrow", l.In).Data
	// Dense MatMulTransB computes each y[i][j] as an independent ascending
	// dot with no zero skip; materializing W row j once per output column
	// preserves every element's operation sequence (see linearOp).
	for j := 0; j < l.Out; j++ {
		s.t.FillRow(wrow, j)
		for i := 0; i < n; i++ {
			xrow := x.Data[i*l.In : (i+1)*l.In]
			var acc float32
			for p, xv := range xrow {
				acc += xv * wrow[p]
			}
			y.Data[i*l.Out+j] = acc
		}
	}
	if l.B != nil {
		tensor.AddRowVector(y, l.B.Value)
	}
	return y
}

func (s *trainLinear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	l := s.l
	if s.x == nil {
		panic(fmt.Sprintf("sparsenn: linear %q Backward before Forward", l.Name()))
	}
	n := dy.Shape[0]
	if s.eng.Frozen() {
		// Tracked-set-only dW: replay the dense MatMulTransA element for
		// each tracked (r,c) — ascending-sample fold from zero, skipping
		// dy[p][r]==0 — exactly the value AddInPlace would land in W.Grad.
		t := s.t
		for k, fi := range t.Idx {
			r := int(fi) / l.In
			c := int(fi) % l.In
			var acc float32
			for p := 0; p < n; p++ {
				av := dy.Data[p*l.Out+r]
				if av == 0 {
					continue
				}
				acc += av * s.x.Data[p*l.In+c]
			}
			t.TGrad[k] = acc
		}
	} else {
		// Pre-freeze every weight is a candidate: dense gradients via the
		// exact dense kernels (dW = dyᵀ x needs no weight values).
		dW := s.ws.GetRaw("dw", l.Out, l.In)
		tensor.MatMulTransAInto(dW, dy, s.x)
		tensor.AddInPlace(l.W.Grad, dW)
	}
	if l.B != nil {
		for i := 0; i < n; i++ {
			row := dy.Data[i*l.Out : (i+1)*l.Out]
			for j, v := range row {
				l.B.Grad.Data[j] += v
			}
		}
	}
	// dx = dy @ W with regenerated rows: clear, then ascending-p
	// accumulation skipping dy==0 — the dense MatMulInto sequence with the
	// weight-row loop hoisted outward.
	dx := s.ws.GetRaw("dx", n, l.In)
	for i := range dx.Data {
		dx.Data[i] = 0
	}
	wrow := s.ws.GetRaw("wrow", l.In).Data
	for p := 0; p < l.Out; p++ {
		s.t.FillRow(wrow, p)
		for i := 0; i < n; i++ {
			av := dy.Data[i*l.Out+p]
			if av == 0 {
				continue
			}
			row := dx.Data[i*l.In : (i+1)*l.In]
			for j, wv := range wrow {
				row[j] += av * wv
			}
		}
	}
	return dx
}

// trainConv is the training-mode sparse Conv2D: im2col lowering with the
// filter matrix in CSR + regeneration form, bit-identical forward and
// backward.
type trainConv struct {
	l   *nn.Conv2D
	t   *core.TrackedTensor
	eng *core.TrackedTrainer
	ws  *tensor.Workspace

	cols       *tensor.Tensor // (N, C·KH·KW, OH·OW) lowering slab
	batch      int
	inShape    []int
	outH, outW int
}

func (s *trainConv) Name() string { return s.l.Name() }

func (s *trainConv) Params() []*nn.Param { return s.l.Params() }

func (s *trainConv) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l := s.l
	if len(x.Shape) != 4 || x.Shape[1] != l.InC {
		panic(fmt.Sprintf("sparsenn: conv %q expected (N,%d,H,W) input, got %v", l.Name(), l.InC, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	s.inShape = append(s.inShape[:0], x.Shape...)
	s.outH = tensor.ConvOutSize(h, l.KH, l.Stride, l.Pad)
	s.outW = tensor.ConvOutSize(w, l.KW, l.Stride, l.Pad)
	s.batch = n
	colRows := l.InC * l.KH * l.KW
	spatial := s.outH * s.outW
	imgSize := l.InC * h * w
	perSample := l.OutC * spatial
	colSize := colRows * spatial

	s.cols = s.ws.GetRaw("cols", n, colRows, spatial)
	y := s.ws.GetRaw("y", n, l.OutC, s.outH, s.outW)
	wrow := s.ws.GetRaw("wrow", colRows).Data
	for i := 0; i < n; i++ {
		tensor.Im2ColSlice(s.cols.Data[i*colSize:(i+1)*colSize], x.Data[i*imgSize:(i+1)*imgSize],
			l.InC, h, w, l.KH, l.KW, l.Stride, l.Pad)
	}
	// Each filter row is materialized once and multiplied against every
	// lowered sample by MatMulRowSlice — the dense MatMulSlice row's exact
	// operation sequence (same tiling, clear, order, and zero skip).
	for f := 0; f < l.OutC; f++ {
		s.t.FillRow(wrow, f)
		for i := 0; i < n; i++ {
			tensor.MatMulRowSlice(y.Data[i*perSample+f*spatial:i*perSample+(f+1)*spatial],
				wrow, s.cols.Data[i*colSize:(i+1)*colSize], colRows, spatial)
		}
	}
	if l.B != nil {
		for i := 0; i < n; i++ {
			for f := 0; f < l.OutC; f++ {
				b := l.B.Value.Data[f]
				plane := y.Data[i*perSample+f*spatial : i*perSample+(f+1)*spatial]
				for j := range plane {
					plane[j] += b
				}
			}
		}
	}
	return y
}

func (s *trainConv) Backward(dy *tensor.Tensor) *tensor.Tensor {
	l := s.l
	if s.cols == nil || s.batch == 0 {
		panic(fmt.Sprintf("sparsenn: conv %q Backward before Forward", l.Name()))
	}
	n := s.batch
	h, w := s.inShape[2], s.inShape[3]
	colRows := l.InC * l.KH * l.KW
	spatial := s.outH * s.outW
	imgSize := l.InC * h * w
	perSample := l.OutC * spatial
	colSize := colRows * spatial
	wSize := l.OutC * colRows

	if s.eng.Frozen() {
		// Tracked-set-only dW: each tracked (f,c) folds the per-sample
		// independent dots (dense MatMulTransBSlice elements) in ascending
		// sample order from zero — the value the dense reduction loop would
		// land in W.Grad.
		t := s.t
		for k, fi := range t.Idx {
			f := int(fi) / colRows
			c := int(fi) % colRows
			var acc float32
			for i := 0; i < n; i++ {
				dyRow := dy.Data[i*perSample+f*spatial : i*perSample+(f+1)*spatial]
				colRow := s.cols.Data[i*colSize+c*spatial : i*colSize+(c+1)*spatial]
				var dot float32
				for j, v := range dyRow {
					dot += v * colRow[j]
				}
				acc += dot
			}
			t.TGrad[k] = acc
		}
	} else {
		// Pre-freeze dense dW: the exact per-sample kernel plus the dense
		// ascending-sample reduction (weights are not read).
		dwPart := s.ws.GetRaw("dwpart", n, wSize)
		for i := 0; i < n; i++ {
			tensor.MatMulTransBSlice(dwPart.Data[i*wSize:(i+1)*wSize],
				dy.Data[i*perSample:(i+1)*perSample], s.cols.Data[i*colSize:(i+1)*colSize],
				l.OutC, spatial, colRows)
		}
		dW := l.W.Grad.Data
		for i := 0; i < n; i++ {
			part := dwPart.Data[i*wSize : (i+1)*wSize]
			for j := range part {
				dW[j] += part[j]
			}
		}
	}
	if l.B != nil {
		// Biases stay dense in both modes: per-sample float64 plane sums
		// accumulated in ascending sample order, the dense dB code verbatim.
		for i := 0; i < n; i++ {
			dyI := dy.Data[i*perSample : (i+1)*perSample]
			for f := 0; f < l.OutC; f++ {
				var sum float64
				row := dyI[f*spatial : (f+1)*spatial]
				for _, v := range row {
					sum += float64(v)
				}
				l.B.Grad.Data[f] += float32(sum)
			}
		}
	}
	// dX: dcols = Wᵀ dy with regenerated filter rows — clear, ascending-f
	// accumulation skipping W[f][c]==0 (the dense MatMulTransASlice
	// sequence with the filter-row loop hoisted outward) — then the dense
	// col2im scatter per sample.
	dx := s.ws.GetRaw("dx", s.inShape...)
	dcols := s.ws.GetRaw("dcols", n, colSize)
	for i := range dcols.Data {
		dcols.Data[i] = 0
	}
	wrow := s.ws.GetRaw("wrow", colRows).Data
	for f := 0; f < l.OutC; f++ {
		s.t.FillRow(wrow, f)
		for i := 0; i < n; i++ {
			dyRow := dy.Data[i*perSample+f*spatial : i*perSample+(f+1)*spatial]
			dcI := dcols.Data[i*colSize : (i+1)*colSize]
			for c := 0; c < colRows; c++ {
				wv := wrow[c]
				if wv == 0 {
					continue
				}
				dcRow := dcI[c*spatial : (c+1)*spatial]
				for j, v := range dyRow {
					dcRow[j] += wv * v
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		tensor.Col2ImSlice(dx.Data[i*imgSize:(i+1)*imgSize], dcols.Data[i*colSize:(i+1)*colSize],
			l.InC, h, w, l.KH, l.KW, l.Stride, l.Pad)
	}
	return dx
}
