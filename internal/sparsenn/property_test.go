package sparsenn_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dropback/internal/nn"
	"dropback/internal/sparse"
	"dropback/internal/sparsenn"
)

// randomStack builds a random frozen-inference model: either an MLP or a
// conv stack, with bias/no-bias, batch norm, PReLU, pooling, dropout, and
// residual blocks drawn at random. It returns the model and the per-sample
// input shape.
func randomStack(rng *rand.Rand, seed uint64) (*nn.Model, []int) {
	if rng.Intn(2) == 0 {
		return randomMLP(rng, seed)
	}
	return randomConvNet(rng, seed)
}

func randomMLP(rng *rand.Rand, seed uint64) (*nn.Model, []int) {
	in := 4 + rng.Intn(29)
	seq := nn.NewSequential("prop-mlp")
	cur := in
	layers := 1 + rng.Intn(3)
	for i := 0; i < layers; i++ {
		out := 3 + rng.Intn(14)
		name := fmt.Sprintf("fc%d", i)
		if rng.Intn(4) == 0 {
			seq.Append(nn.NewLinearNoBias(name, seed, cur, out))
		} else {
			seq.Append(nn.NewLinear(name, seed, cur, out))
		}
		switch rng.Intn(4) {
		case 0:
			seq.Append(nn.NewBatchNorm(name+"_bn", seed, out), nn.NewReLU(name+"_relu"))
		case 1:
			seq.Append(nn.NewPReLU(name+"_prelu", seed))
		case 2:
			seq.Append(nn.NewReLU(name+"_relu"), nn.NewDropout(name+"_drop", seed, 0.5))
		default:
			seq.Append(nn.NewReLU(name + "_relu"))
		}
		cur = out
	}
	seq.Append(nn.NewLinear("head", seed, cur, 2+rng.Intn(6)))
	return nn.NewModel(seq, seed), []int{in}
}

func randomConvNet(rng *rand.Rand, seed uint64) (*nn.Model, []int) {
	inC := 1 + rng.Intn(3)
	inSide := 6 + 2*rng.Intn(3) // 6, 8, 10
	side := inSide
	seq := nn.NewSequential("prop-conv")
	cur := inC
	blocks := 1 + rng.Intn(2)
	for i := 0; i < blocks; i++ {
		out := 2 + rng.Intn(5)
		name := fmt.Sprintf("conv%d", i)
		if rng.Intn(3) == 0 {
			seq.Append(nn.NewConv2DNoBias(name, seed, cur, out, 3, 1, 1))
		} else {
			seq.Append(nn.NewConv2D(name, seed, cur, out, 3, 1, 1))
		}
		switch rng.Intn(3) {
		case 0:
			seq.Append(nn.NewBatchNorm(name+"_bn", seed, out))
		case 1:
			// A same-shape residual conv block stresses the container mirror.
			body := nn.NewSequential(name+"_resbody",
				nn.NewConv2D(name+"_res", seed, out, out, 3, 1, 1),
				nn.NewReLU(name+"_resrelu"))
			seq.Append(nn.NewResidual(name+"_res", body, nn.NewIdentity(name+"_short")))
		}
		seq.Append(nn.NewReLU(name + "_relu"))
		if rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				seq.Append(nn.NewMaxPool2D(name+"_pool", 2, 2))
			} else {
				seq.Append(nn.NewAvgPool2D(name+"_pool", 2, 2))
			}
			side /= 2
		}
		cur = out
	}
	classes := 2 + rng.Intn(6)
	if rng.Intn(2) == 0 {
		seq.Append(nn.NewGlobalAvgPool2D("gap"), nn.NewLinear("head", seed, cur, classes))
	} else {
		seq.Append(nn.NewFlatten("flatten"), nn.NewLinear("head", seed, cur*side*side, classes))
	}
	return nn.NewModel(seq, seed), []int{inC, inSide, inSide}
}

// TestPropertySparseForwardMatchesDense fuzzes random model stacks ×
// compression ratios × batch sizes and asserts the sparse-native forward is
// byte-equal to Artifact.Apply followed by a dense forward. It rides the
// repo-wide `go test -race ./...` job, so the whole matrix also runs under
// the race detector.
func TestPropertySparseForwardMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(1 + rng.Intn(1000))
		stackRng := rand.New(rand.NewSource(rng.Int63()))
		trained, shape := randomStack(stackRng, seed)

		// Perturb a random fraction: 0.02 ≈ the paper's compression regime,
		// up to 0.5 ≈ barely compressed.
		fraction := []float64{0.02, 0.1, 0.5}[trial%3]
		perturb(trained, fraction, stackRng.Int63())
		art := sparse.Compress(trained)

		fresh := nn.NewModel(cloneLayer(trained.Net, seed), seed)
		if err := art.Apply(fresh); err != nil {
			t.Fatalf("trial %d: Apply: %v", trial, err)
		}
		proto := nn.NewModel(cloneLayer(trained.Net, seed), seed)
		plan, err := sparsenn.Compile(proto, art)
		if err != nil {
			t.Fatalf("trial %d: Compile: %v", trial, err)
		}
		ex := sparsenn.NewExecutor(plan)

		for _, n := range []int{1, 3, 8} {
			x := input(stackRng.Int63(), append([]int{n}, shape...)...)
			want := fresh.Net.Forward(x, false)
			got := ex.Infer(x)
			for i := range want.Data {
				if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
					t.Fatalf("trial %d (fraction %.2f, batch %d): output[%d] %g != dense %g",
						trial, fraction, n, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// cloneLayer rebuilds a fresh (initialization-valued) copy of the layer
// tree, reusing each layer's own constructor so parameter registration
// order — and therefore the global flat index space — is identical.
func cloneLayer(l nn.Layer, seed uint64) nn.Layer {
	switch t := l.(type) {
	case *nn.Sequential:
		children := make([]nn.Layer, 0, len(t.Layers()))
		for _, c := range t.Layers() {
			children = append(children, cloneLayer(c, seed))
		}
		return nn.NewSequential(t.Name(), children...)
	case *nn.Residual:
		return nn.NewResidual(t.Name(), cloneLayer(t.Body, seed), cloneLayer(t.Shortcut, seed))
	case *nn.Identity:
		return nn.NewIdentity(t.Name())
	case *nn.Flatten:
		return nn.NewFlatten(t.Name())
	case *nn.ReLU:
		return nn.NewReLU(t.Name())
	case *nn.Dropout:
		return nn.NewDropout(t.Name(), seed, 0.5)
	case *nn.MaxPool2D:
		return nn.NewMaxPool2D(t.Name(), t.K, t.Stride)
	case *nn.AvgPool2D:
		return nn.NewAvgPool2D(t.Name(), t.K, t.Stride)
	case *nn.GlobalAvgPool2D:
		return nn.NewGlobalAvgPool2D(t.Name())
	case *nn.PReLU:
		return nn.NewPReLU(t.Name(), seed)
	case *nn.BatchNorm:
		return nn.NewBatchNorm(t.Name(), seed, t.C)
	case *nn.Linear:
		if t.B == nil {
			return nn.NewLinearNoBias(t.Name(), seed, t.In, t.Out)
		}
		return nn.NewLinear(t.Name(), seed, t.In, t.Out)
	case *nn.Conv2D:
		if t.B == nil {
			return nn.NewConv2DNoBias(t.Name(), seed, t.InC, t.OutC, t.KH, t.Stride, t.Pad)
		}
		return nn.NewConv2D(t.Name(), seed, t.InC, t.OutC, t.KH, t.Stride, t.Pad)
	default:
		panic(fmt.Sprintf("cloneLayer: unsupported %T", l))
	}
}
