package sparsenn

import (
	"dropback/internal/energy"
	"dropback/internal/nn"
	"dropback/internal/tensor"
)

// Executor runs inference on a shared Plan. It owns only per-replica
// activation scratch (the mirror layer tree with its workspaces) plus
// weight-traffic counters; all weight state lives in the Plan. Like an
// nn.Model, an Executor is single-goroutine-only — build one per concurrent
// worker, all from the same Plan.
type Executor struct {
	plan *Plan
	root nn.Layer
	// Weight-traffic accounting, incremented once per op forward (outside
	// the parallel regions, so counts are deterministic).
	trackedReads int64
	regens       int64
}

// NewExecutor builds an inference executor over the shared plan. The cost is
// activation scratch only: no weight state is copied.
func NewExecutor(p *Plan) *Executor {
	ex := &Executor{plan: p}
	ex.root = p.root.build(ex)
	return ex
}

// Plan returns the shared plan this executor runs on.
func (e *Executor) Plan() *Plan { return e.plan }

// Infer runs a forward pass on the sparse representation. The returned
// tensor is executor-owned scratch, valid until the next Infer call.
func (e *Executor) Infer(x *tensor.Tensor) *tensor.Tensor {
	return e.root.Forward(x, false)
}

// countWeights records one materialization pass over a weight group with
// `tracked` stored scalars out of `elems` total, repeated `times` times
// (worker chunks that each regenerate the group independently).
func (e *Executor) countWeights(tracked, elems, times int) {
	e.trackedReads += int64(tracked) * int64(times)
	e.regens += int64(elems-tracked) * int64(times)
}

// WeightTraffic returns the weight-access counters accumulated since the
// last reset as an energy.Counter: every tracked weight read is a storage
// (DRAM) read, every untracked weight is a regeneration. Activation traffic
// is not modeled — it is identical between the sparse and dense paths.
func (e *Executor) WeightTraffic() energy.Counter {
	return energy.Counter{
		DRAMReads:     e.trackedReads,
		Regenerations: e.regens,
	}
}

// ResetTraffic zeroes the weight-traffic counters.
func (e *Executor) ResetTraffic() {
	e.trackedReads, e.regens = 0, 0
}

// WeightBytes reports the executor's resident weight footprint split into
// the plan-shared portion (one copy per process) and the per-executor
// private portion (none — executors hold only activation scratch).
func (e *Executor) WeightBytes() (shared, private int) {
	return e.plan.WeightBytes(), 0
}
