package sparsenn_test

import (
	"testing"

	"dropback/internal/models"
	"dropback/internal/nn"
	"dropback/internal/sparse"
	"dropback/internal/sparsenn"
	"dropback/internal/tensor"
)

// benchSetup compresses a perturbed model at ~20× and returns the artifact
// plus a dense model with the artifact applied.
func benchSetup(b *testing.B, build func(seed uint64) *nn.Model) (*sparse.Artifact, *nn.Model, *sparsenn.Executor) {
	trained := build(1)
	perturb(trained, 0.05, 7)
	art := sparse.Compress(trained)
	dense := build(1)
	if err := art.Apply(dense); err != nil {
		b.Fatal(err)
	}
	plan, err := sparsenn.Compile(build(1), art)
	if err != nil {
		b.Fatal(err)
	}
	return art, dense, sparsenn.NewExecutor(plan)
}

// reportWeightBytes attaches the resident-weight metrics so the benchmark
// output records the memory collapse alongside ns/op (benchguard ignores
// extra ReportMetric columns).
func reportWeightBytes(b *testing.B, plan *sparsenn.Plan, sparsePath bool) {
	if sparsePath {
		b.ReportMetric(float64(plan.WeightBytes()), "weightB/replica")
	} else {
		b.ReportMetric(float64(plan.DenseWeightBytes()), "weightB/replica")
	}
}

// The forward benchmarks compare the two inference paths on the same
// artifact at the paper's ~20× compression: the dense path reads a full
// per-replica weight copy from memory; the sparse path reads the shared CSR
// payload and regenerates untracked weights in registers.

func BenchmarkSparseForward(b *testing.B) {
	b.Run("mlp", func(b *testing.B) {
		_, _, ex := benchSetup(b, models.MNIST100100)
		x := tensor.New(8, 784)
		ex.Infer(x) // warm workspaces
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.Infer(x)
		}
		reportWeightBytes(b, ex.Plan(), true)
	})
	b.Run("conv", func(b *testing.B) {
		_, _, ex := benchSetup(b, func(seed uint64) *nn.Model {
			return models.NewVGGS(models.VGGSReduced(12, 8, seed, nil))
		})
		x := tensor.New(8, 3, 12, 12)
		ex.Infer(x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.Infer(x)
		}
		reportWeightBytes(b, ex.Plan(), true)
	})
}

func BenchmarkDenseForward(b *testing.B) {
	b.Run("mlp", func(b *testing.B) {
		_, dense, ex := benchSetup(b, models.MNIST100100)
		x := tensor.New(8, 784)
		dense.Net.Forward(x, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dense.Net.Forward(x, false)
		}
		reportWeightBytes(b, ex.Plan(), false)
	})
	b.Run("conv", func(b *testing.B) {
		_, dense, ex := benchSetup(b, func(seed uint64) *nn.Model {
			return models.NewVGGS(models.VGGSReduced(12, 8, seed, nil))
		})
		x := tensor.New(8, 3, 12, 12)
		dense.Net.Forward(x, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dense.Net.Forward(x, false)
		}
		reportWeightBytes(b, ex.Plan(), false)
	})
}
