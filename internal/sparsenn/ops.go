package sparsenn

import (
	"fmt"
	"math"

	"dropback/internal/nn"
	"dropback/internal/tensor"
)

// layerSpec is one compiled layer: immutable plan-owned weight state plus
// the recipe for building a per-executor mirror layer. The mirror tree
// implements nn.Layer so the existing containers (Sequential, Residual,
// DenseBlock) orchestrate it unchanged; only the weight-bearing leaves are
// replaced by sparse kernels.
type layerSpec interface {
	build(ex *Executor) nn.Layer
}

// Container and parameter-free specs reuse the nn layers directly: they hold
// no weights, and a fresh instance per executor gives each replica its own
// activation workspaces (the nn concurrency contract).

type seqSpec struct {
	name     string
	children []layerSpec
}

func (s *seqSpec) build(ex *Executor) nn.Layer {
	layers := make([]nn.Layer, len(s.children))
	for i, c := range s.children {
		layers[i] = c.build(ex)
	}
	return nn.NewSequential(s.name, layers...)
}

type resSpec struct {
	name           string
	body, shortcut layerSpec
}

func (s *resSpec) build(ex *Executor) nn.Layer {
	return nn.NewResidual(s.name, s.body.build(ex), s.shortcut.build(ex))
}

type denseBlockSpec struct {
	name        string
	inC, growth int
	units       []layerSpec
}

func (s *denseBlockSpec) build(ex *Executor) nn.Layer {
	units := make([]nn.Layer, len(s.units))
	for i, u := range s.units {
		units[i] = u.build(ex)
	}
	return nn.NewDenseBlock(s.name, s.inC, s.growth, units...)
}

type identitySpec struct{ name string }

func (s *identitySpec) build(ex *Executor) nn.Layer { return nn.NewIdentity(s.name) }

type flattenSpec struct{ name string }

func (s *flattenSpec) build(ex *Executor) nn.Layer { return nn.NewFlatten(s.name) }

type reluSpec struct{ name string }

func (s *reluSpec) build(ex *Executor) nn.Layer { return nn.NewReLU(s.name) }

type maxPoolSpec struct {
	name      string
	k, stride int
}

func (s *maxPoolSpec) build(ex *Executor) nn.Layer { return nn.NewMaxPool2D(s.name, s.k, s.stride) }

type avgPoolSpec struct {
	name      string
	k, stride int
}

func (s *avgPoolSpec) build(ex *Executor) nn.Layer { return nn.NewAvgPool2D(s.name, s.k, s.stride) }

type gapSpec struct{ name string }

func (s *gapSpec) build(ex *Executor) nn.Layer { return nn.NewGlobalAvgPool2D(s.name) }

// Weight-bearing specs build sparse leaf ops: one op instance per executor
// (owning that executor's scratch), all sharing the spec's plan-owned weight
// state.

type linearSpec struct {
	name        string
	in, out     int
	w           *csrMat
	bias        []float32 // nil when the layer has no bias
	biasTracked int
}

func (s *linearSpec) build(ex *Executor) nn.Layer {
	return &linearOp{spec: s, ws: tensor.NewWorkspace(), ex: ex}
}

type convSpec struct {
	name                           string
	inC, outC, kh, kw, stride, pad int
	w                              *csrMat
	bias                           []float32
	biasTracked                    int
}

func (s *convSpec) build(ex *Executor) nn.Layer {
	return &convOp{spec: s, ws: tensor.NewWorkspace(), ex: ex}
}

type bnSpec struct {
	name                        string
	c                           int
	eps                         float32
	gamma, beta, mean, variance []float32
	tracked, elems              int
}

func (s *bnSpec) build(ex *Executor) nn.Layer {
	return &bnOp{spec: s, ws: tensor.NewWorkspace(), ex: ex}
}

type preluSpec struct {
	name           string
	a              float32
	tracked, elems int
}

func (s *preluSpec) build(ex *Executor) nn.Layer {
	return &preluOp{spec: s, ws: tensor.NewWorkspace(), ex: ex}
}

// inferenceOnly is the shared Backward/Params stub of the sparse leaf ops.
func inferenceOnlyPanic(name string) {
	panic(fmt.Sprintf("sparsenn: %q is inference-only (no Backward)", name))
}

// linearOp computes y = x Wᵀ + b with W in CSR + regeneration form.
//
// Bit-identity argument: the dense path (tensor.MatMulTransB) computes each
// output element y[i][j] as an independent dot product Σ_p x[i][p]·W[j][p]
// accumulated in ascending p with no zero skip, then adds the bias row by
// row. This kernel materializes W row j into a per-chunk bounce buffer
// (tracked values + regenerated values — exactly the dense row) and runs the
// identical ascending-p accumulation, so every output element sees the same
// float32 operations in the same order. Partitioning output columns across
// workers instead of batch rows is safe because each element's dot product
// is self-contained.
type linearOp struct {
	spec *linearSpec
	ws   *tensor.Workspace
	ex   *Executor
}

func (l *linearOp) Name() string { return l.spec.name }

func (l *linearOp) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := l.spec
	if len(x.Shape) != 2 || x.Shape[1] != s.in {
		panic(fmt.Sprintf("sparsenn: linear %q expected (N,%d) input, got %v", s.name, s.in, x.Shape))
	}
	n := x.Shape[0]
	y := l.ws.GetRaw("y", n, s.out)
	work := n * s.out * s.in
	chunks := tensor.ParallelChunkCount(s.out, work)
	wrows := l.ws.GetRaw("wrow", chunks, s.in)
	if chunks == 1 {
		// Calling the worker directly keeps the steady-state serving path
		// (small batches never fan out) free of closure allocations.
		l.rowRange(x, y, wrows.Data[:s.in], 0, s.out)
	} else {
		tensor.ParallelChunks(s.out, work, func(c, lo, hi int) {
			l.rowRange(x, y, wrows.Data[c*s.in:(c+1)*s.in], lo, hi)
		})
	}
	if s.bias != nil {
		for i := 0; i < n; i++ {
			row := y.Data[i*s.out : (i+1)*s.out]
			for j := range row {
				row[j] += s.bias[j]
			}
		}
		l.ex.countWeights(s.biasTracked, len(s.bias), 1)
	}
	// Output rows are partitioned across chunks, so each weight row is
	// materialized exactly once per forward regardless of worker count.
	l.ex.countWeights(s.w.nnz(), s.w.elems(), 1)
	return y
}

// rowRange computes output columns [lo, hi) for the whole batch, streaming
// each weight row through the caller-provided bounce buffer.
func (l *linearOp) rowRange(x, y *tensor.Tensor, wrow []float32, lo, hi int) {
	s := l.spec
	n := x.Shape[0]
	for j := lo; j < hi; j++ {
		s.w.fillRow(wrow, j)
		for i := 0; i < n; i++ {
			xrow := x.Data[i*s.in : (i+1)*s.in]
			var acc float32
			for p, xv := range xrow {
				acc += xv * wrow[p]
			}
			y.Data[i*s.out+j] = acc
		}
	}
}

func (l *linearOp) Backward(dy *tensor.Tensor) *tensor.Tensor {
	inferenceOnlyPanic(l.spec.name)
	return nil
}

func (l *linearOp) Params() []*nn.Param { return nil }

// convOp computes a 2-D convolution by im2col lowering with the filter
// matrix in CSR + regeneration form.
//
// Bit-identity argument: the dense path lowers each sample and runs
// tensor.MatMulSlice(y_i, W, cols_i) — a jb-tiled kernel where each output
// element accumulates from a cleared tile in ascending filter-column order,
// skipping zero weight values. This kernel materializes one filter row at a
// time into a per-chunk bounce buffer and runs tensor.MatMulRowSlice, which
// performs that row's exact operation sequence (same tiling, same clear,
// same ascending order, same zero skip on the same values). Hoisting the
// filter-row loop outside the sample loop reorders only whole output
// elements, never the operations within one, and the trailing bias adds per
// sample match the dense per-plane adds element for element.
type convOp struct {
	spec *convSpec
	ws   *tensor.Workspace
	ex   *Executor
}

func (l *convOp) Name() string { return l.spec.name }

func (l *convOp) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := l.spec
	if len(x.Shape) != 4 || x.Shape[1] != s.inC {
		panic(fmt.Sprintf("sparsenn: conv %q expected (N,%d,H,W) input, got %v", s.name, s.inC, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	outH := tensor.ConvOutSize(h, s.kh, s.stride, s.pad)
	outW := tensor.ConvOutSize(w, s.kw, s.stride, s.pad)
	colRows := s.inC * s.kh * s.kw
	spatial := outH * outW
	imgSize := s.inC * h * w
	perSample := s.outC * spatial
	colSize := colRows * spatial

	cols := l.ws.GetRaw("cols", n, colRows, spatial)
	y := l.ws.GetRaw("y", n, s.outC, outH, outW)
	work := n * perSample * colRows
	chunks := tensor.ParallelChunkCount(n, work)
	wrows := l.ws.GetRaw("wrow", chunks, colRows)
	g := convGeom{h: h, w: w, colRows: colRows, spatial: spatial,
		imgSize: imgSize, perSample: perSample, colSize: colSize}
	if chunks == 1 {
		// Direct call: the steady-state serving path (small batches never fan
		// out) stays free of closure allocations.
		l.sampleRange(x, y, cols, wrows.Data[:colRows], 0, n, g)
	} else {
		tensor.ParallelChunks(n, work, func(c, lo, hi int) {
			l.sampleRange(x, y, cols, wrows.Data[c*colRows:(c+1)*colRows], lo, hi, g)
		})
	}
	// Each worker chunk regenerates the full filter matrix once, so measured
	// traffic scales with the chunk count (1 for small batches).
	l.ex.countWeights(s.w.nnz(), s.w.elems(), chunks)
	if s.bias != nil {
		l.ex.countWeights(s.biasTracked, len(s.bias), 1)
	}
	return y
}

// convGeom carries the per-forward derived dimensions into sampleRange.
type convGeom struct {
	h, w, colRows, spatial, imgSize, perSample, colSize int
}

// sampleRange lowers and convolves samples [lo, hi): im2col each sample,
// then bounce each filter row through wrow and multiply it against every
// lowered sample, then add the bias planes.
func (l *convOp) sampleRange(x, y, cols *tensor.Tensor, wrow []float32, lo, hi int, g convGeom) {
	s := l.spec
	for i := lo; i < hi; i++ {
		tensor.Im2ColSlice(cols.Data[i*g.colSize:(i+1)*g.colSize], x.Data[i*g.imgSize:(i+1)*g.imgSize],
			s.inC, g.h, g.w, s.kh, s.kw, s.stride, s.pad)
	}
	// Filter rows are materialized once per chunk and reused across the
	// chunk's samples, amortizing regeneration over the batch.
	for f := 0; f < s.outC; f++ {
		s.w.fillRow(wrow, f)
		for i := lo; i < hi; i++ {
			tensor.MatMulRowSlice(y.Data[i*g.perSample+f*g.spatial:i*g.perSample+(f+1)*g.spatial],
				wrow, cols.Data[i*g.colSize:(i+1)*g.colSize], g.colRows, g.spatial)
		}
	}
	for f := 0; f < len(s.bias); f++ {
		b := s.bias[f]
		for i := lo; i < hi; i++ {
			plane := y.Data[i*g.perSample+f*g.spatial : i*g.perSample+(f+1)*g.spatial]
			for j := range plane {
				plane[j] += b
			}
		}
	}
}

func (l *convOp) Backward(dy *tensor.Tensor) *tensor.Tensor {
	inferenceOnlyPanic(l.spec.name)
	return nil
}

func (l *convOp) Params() []*nn.Param { return nil }

// bnOp applies inference-mode batch normalization using the plan's shared
// gamma/beta vectors and running statistics. The per-element expression is
// copied verbatim from nn.BatchNorm's inference branch, so outputs are
// bit-identical.
type bnOp struct {
	spec *bnSpec
	ws   *tensor.Workspace
	ex   *Executor
}

func (l *bnOp) Name() string { return l.spec.name }

func (l *bnOp) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := l.spec
	var groups, spatial int
	switch len(x.Shape) {
	case 2:
		groups, spatial = x.Shape[0], 1
	case 4:
		groups, spatial = x.Shape[0], x.Shape[2]*x.Shape[3]
	default:
		panic(fmt.Sprintf("sparsenn: batchnorm %q supports 2-D or 4-D input, got %v", s.name, x.Shape))
	}
	if x.Shape[1] != s.c {
		panic(fmt.Sprintf("sparsenn: batchnorm %q expected %d channels, got %v", s.name, s.c, x.Shape))
	}
	y := l.ws.GetRaw("y", x.Shape...)
	for c := 0; c < s.c; c++ {
		inv := float32(1 / math.Sqrt(float64(s.variance[c])+float64(s.eps)))
		mu := s.mean[c]
		gamma, beta := s.gamma[c], s.beta[c]
		for g := 0; g < groups; g++ {
			base := (g*s.c + c) * spatial
			for sp := 0; sp < spatial; sp++ {
				y.Data[base+sp] = gamma*(x.Data[base+sp]-mu)*inv + beta
			}
		}
	}
	l.ex.countWeights(s.tracked, s.elems, 1)
	return y
}

func (l *bnOp) Backward(dy *tensor.Tensor) *tensor.Tensor {
	inferenceOnlyPanic(l.spec.name)
	return nil
}

func (l *bnOp) Params() []*nn.Param { return nil }

// preluOp applies the parametric ReLU with the plan's shared slope,
// reproducing nn.PReLU's forward expression exactly (workspace output
// instead of a fresh allocation; the values are identical).
type preluOp struct {
	spec *preluSpec
	ws   *tensor.Workspace
	ex   *Executor
}

func (l *preluOp) Name() string { return l.spec.name }

func (l *preluOp) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := l.spec
	y := l.ws.GetRaw("y", x.Shape...)
	a := s.a
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = a * v
		}
	}
	l.ex.countWeights(s.tracked, s.elems, 1)
	return y
}

func (l *preluOp) Backward(dy *tensor.Tensor) *tensor.Tensor {
	inferenceOnlyPanic(l.spec.name)
	return nil
}

func (l *preluOp) Params() []*nn.Param { return nil }
