package sparsenn_test

import (
	"math"
	"math/rand"
	"testing"

	"dropback/internal/models"
	"dropback/internal/nn"
	"dropback/internal/prune"
	"dropback/internal/sparse"
	"dropback/internal/sparsenn"
	"dropback/internal/tensor"
)

// perturb mutates a deterministic fraction of the model's weights away from
// their initialization (so Compress stores them) and gives every batch-norm
// layer non-trivial running statistics, simulating a trained model.
func perturb(m *nn.Model, fraction float64, rngSeed int64) {
	rng := rand.New(rand.NewSource(rngSeed))
	total := m.Set.Total()
	for i := 0; i < total; i++ {
		if rng.Float64() < fraction {
			m.Set.Set(i, float32(rng.NormFloat64())*0.2)
		}
	}
	nn.Walk(m.Net, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm); ok {
			for c := range bn.RunningMean {
				bn.RunningMean[c] = float32(rng.NormFloat64()) * 0.5
				bn.RunningVar[c] = float32(0.5 + rng.Float64())
			}
		}
	})
}

// input builds a deterministic pseudo-random input tensor.
func input(rngSeed int64, shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(rngSeed))
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

// registry mirrors the CLI model registries plus the BN+PReLU MLP, covering
// every layer type the sparse compiler supports.
var registry = []struct {
	name  string
	build func(seed uint64) *nn.Model
	shape []int // per-sample input shape
}{
	{"mnist100", models.MNIST100100, []int{784}},
	{"lenet300", models.LeNet300100, []int{784}},
	{"bn-prelu-mlp", func(seed uint64) *nn.Model {
		return models.NewMLPWithBNPReLU("bnp", 64, []int{32, 16}, 10, seed, nil)
	}, []int{64}},
	{"vggs-reduced", func(seed uint64) *nn.Model {
		return models.NewVGGS(models.VGGSReduced(12, 8, seed, nil))
	}, []int{3, 12, 12}},
	{"wrn-reduced", func(seed uint64) *nn.Model {
		return models.NewWRN(models.WRNReduced(10, 2, seed, nil))
	}, []int{3, 12, 12}},
	{"densenet-reduced", func(seed uint64) *nn.Model {
		return models.NewDenseNet(models.DenseNetReduced(13, 6, seed, nil))
	}, []int{3, 12, 12}},
}

// TestSparseForwardBitIdentical is the tentpole correctness gate: for every
// supported architecture, executing straight off the artifact must produce
// outputs byte-for-byte equal to Artifact.Apply followed by a dense forward.
func TestSparseForwardBitIdentical(t *testing.T) {
	const seed = 7
	for _, tc := range registry {
		t.Run(tc.name, func(t *testing.T) {
			trained := tc.build(seed)
			perturb(trained, 0.05, 11)
			art := sparse.Compress(trained)
			if art.StoredWeights() == 0 {
				t.Fatal("perturbation produced an empty artifact")
			}

			dense := tc.build(seed)
			if err := art.Apply(dense); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			plan, err := sparsenn.Compile(tc.build(seed), art)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			ex := sparsenn.NewExecutor(plan)

			for _, n := range []int{1, 5} {
				x := input(int64(100+n), append([]int{n}, tc.shape...)...)
				want := dense.Net.Forward(x, false)
				got := ex.Infer(x)
				if len(got.Data) != len(want.Data) {
					t.Fatalf("batch %d: output length %d, want %d", n, len(got.Data), len(want.Data))
				}
				for i := range want.Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
						t.Fatalf("batch %d: output[%d] = %x, want %x (%g vs %g)",
							n, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]),
							got.Data[i], want.Data[i])
					}
				}
			}
		})
	}
}

// TestCompileValidation covers the artifact/prototype mismatch paths.
func TestCompileValidation(t *testing.T) {
	m := models.MNIST100100(1)
	perturb(m, 0.05, 3)
	art := sparse.Compress(m)

	if _, err := sparsenn.Compile(models.MNIST100100(2), art); err == nil {
		t.Error("expected seed-mismatch error")
	}
	if _, err := sparsenn.Compile(models.LeNet300100(1), art); err == nil {
		t.Error("expected parameter-count mismatch error")
	}
	if _, err := sparsenn.Compile(models.MNIST100100(1), art); err != nil {
		t.Errorf("valid compile failed: %v", err)
	}
}

// TestCompileRejectsVariational: variational-dropout layers carry
// log-variance state with no sparse regeneration story and must be rejected,
// not silently densified.
func TestCompileRejectsVariational(t *testing.T) {
	m := models.NewVGGS(models.VGGSReduced(12, 8, 1, prune.Variational{}))
	perturb(m, 0.05, 3)
	art := sparse.Compress(m)
	if _, err := sparsenn.Compile(models.NewVGGS(models.VGGSReduced(12, 8, 1, prune.Variational{})), art); err == nil {
		t.Fatal("expected unsupported-layer error for variational model")
	}
}

// TestExecutorsSharePlan: two executors over one plan must agree bit-for-bit
// and report the same shared footprint with zero private weight bytes.
func TestExecutorsSharePlan(t *testing.T) {
	trained := models.MNIST100100(3)
	perturb(trained, 0.05, 5)
	art := sparse.Compress(trained)
	plan, err := sparsenn.Compile(models.MNIST100100(3), art)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sparsenn.NewExecutor(plan), sparsenn.NewExecutor(plan)
	x := input(9, 4, 784)
	ya, yb := a.Infer(x), b.Infer(x)
	for i := range ya.Data {
		if math.Float32bits(ya.Data[i]) != math.Float32bits(yb.Data[i]) {
			t.Fatalf("executors disagree at %d", i)
		}
	}
	shared, private := a.WeightBytes()
	if shared != plan.WeightBytes() || private != 0 {
		t.Fatalf("WeightBytes() = (%d, %d), want (%d, 0)", shared, private, plan.WeightBytes())
	}
}

// TestWeightBytesCollapse is the acceptance-criteria memory bar: at ≥20×
// compression the plan's resident weight bytes must be at least 5× below the
// dense per-replica footprint.
func TestWeightBytesCollapse(t *testing.T) {
	trained := models.MNIST100100(1)
	perturb(trained, 0.05, 7) // ~5% tracked → ~20× compression
	art := sparse.Compress(trained)
	if r := art.CompressionRatio(); r < 20 {
		t.Fatalf("setup: compression ratio %.1f, want >= 20", r)
	}
	plan, err := sparsenn.Compile(models.MNIST100100(1), art)
	if err != nil {
		t.Fatal(err)
	}
	sparseBytes, denseBytes := plan.WeightBytes(), plan.DenseWeightBytes()
	if sparseBytes*5 > denseBytes {
		t.Fatalf("resident weight bytes %d not >=5x below dense %d", sparseBytes, denseBytes)
	}
	t.Logf("resident weight bytes: sparse %d vs dense %d (%.1fx) at %.1fx compression",
		sparseBytes, denseBytes, float64(denseBytes)/float64(sparseBytes), art.CompressionRatio())
}

// TestSparseForwardAllocFree: the MLP sparse path must not allocate at
// steady state (workspaces are warm after the first pass; small batches stay
// single-chunk so no goroutine fan-out allocates either).
func TestSparseForwardAllocFree(t *testing.T) {
	trained := models.MNIST100100(1)
	perturb(trained, 0.05, 7)
	art := sparse.Compress(trained)
	plan, err := sparsenn.Compile(models.MNIST100100(1), art)
	if err != nil {
		t.Fatal(err)
	}
	ex := sparsenn.NewExecutor(plan)
	x := input(2, 4, 784)
	ex.Infer(x) // warm the workspaces
	if allocs := testing.AllocsPerRun(10, func() { ex.Infer(x) }); allocs != 0 {
		t.Fatalf("steady-state sparse forward allocates %.0f times per run", allocs)
	}
}
