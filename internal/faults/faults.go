// Package faults is a reusable fault-injection harness for robustness
// testing. It provides the I/O failure modes a training service must
// survive — writes that error partway (a full disk), writes that stop dead
// at a chosen byte (a crash or power loss), reads that deliver flipped bits
// (storage corruption) — plus a training-loop hook that injects a NaN into
// a chosen gradient at a chosen step (a numerical fault). Production code
// never imports this package; tests wire its writers and hooks through the
// seams the runtime exposes (fsatomic.WrapWriter, TrainConfig.GradHook).
package faults

import (
	"errors"
	"io"
	"math"
	"os"

	"dropback/internal/nn"
)

// ErrInjected is the default error injected writers and readers return.
var ErrInjected = errors.New("faults: injected failure")

// FailingWriter passes writes through until N bytes have been written, then
// returns Err (ErrInjected if nil) forever — a disk filling up, or a
// process killed mid-write whose error surfaces to the caller. The byte at
// the boundary is a partial write: the first failing call writes what fits
// under the limit and reports the error.
type FailingWriter struct {
	W io.Writer
	// N is the number of bytes allowed through before failure.
	N int64
	// Err overrides ErrInjected when non-nil.
	Err error

	written int64
}

// Write implements io.Writer.
func (f *FailingWriter) Write(p []byte) (int, error) {
	remaining := f.N - f.written
	if remaining <= 0 {
		return 0, f.err()
	}
	if int64(len(p)) <= remaining {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	n, err := f.W.Write(p[:remaining])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, f.err()
}

// Written returns the number of bytes that made it through.
func (f *FailingWriter) Written() int64 { return f.written }

func (f *FailingWriter) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// ShortWriter violates the io.Writer contract the way a buggy transport
// does: each call writes at most Max bytes and reports the truncated count
// with a nil error. Correct callers (bufio, binary.Write wrappers) must
// detect the short write and fail rather than silently truncate.
type ShortWriter struct {
	W   io.Writer
	Max int
}

// Write implements io.Writer.
func (s *ShortWriter) Write(p []byte) (int, error) {
	if len(p) <= s.Max {
		return s.W.Write(p)
	}
	return s.W.Write(p[:s.Max])
}

// FlipReader passes reads through, flipping bit Bit of the byte at stream
// offset Offset — a single-event storage or memory corruption.
type FlipReader struct {
	R      io.Reader
	Offset int64
	Bit    uint8

	pos int64
}

// Read implements io.Reader.
func (f *FlipReader) Read(p []byte) (int, error) {
	n, err := f.R.Read(p)
	if n > 0 && f.Offset >= f.pos && f.Offset < f.pos+int64(n) {
		p[f.Offset-f.pos] ^= 1 << (f.Bit % 8)
	}
	f.pos += int64(n)
	return n, err
}

// FlipBitInFile flips one bit of the file in place — corrupting an
// already-written artifact the way LoadLatestValid must detect and skip.
func FlipBitInFile(path string, offset int64, bit uint8) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(b[:], offset)
	return err
}

// TruncateFile cuts the file to n bytes — the torn tail a crash between
// write and fsync leaves behind on a non-atomic writer.
func TruncateFile(path string, n int64) error {
	return os.Truncate(path, n)
}

// NaNInjector corrupts one gradient at one global step, once. Its Hook fits
// the trainer's GradHook seam: it fires after the backward pass and before
// the optimizer applies the gradients, which is exactly where a numerical
// fault (overflowed activation, bad reduction) lands in a real run.
type NaNInjector struct {
	// Step is the zero-based global optimizer step to corrupt.
	Step int
	// Index is the flat global parameter index whose gradient turns NaN.
	Index int

	fired bool
}

// Fired reports whether the injection has happened.
func (n *NaNInjector) Fired() bool { return n.fired }

// Hook returns the gradient hook to install as TrainConfig.GradHook.
func (n *NaNInjector) Hook() func(step int, set *nn.ParamSet) {
	return func(step int, set *nn.ParamSet) {
		if n.fired || step != n.Step {
			return
		}
		n.fired = true
		p, e := set.Locate(n.Index)
		set.Params()[p].Grad.Data[e] = float32(math.NaN())
	}
}
