package faults

import (
	"net"
	"sync"
)

// Connection-level injectors for the multi-node training harness. Each wraps
// a net.Conn and plugs into dist.Config.WrapConn; deadlines and Close pass
// through to the embedded connection, so cluster timeout handling keeps
// working on the faulty link.

// CutConn severs the connection after N bytes have crossed it in either
// direction — a peer process crashing mid-exchange. The boundary write or
// read is partial: bytes under the limit pass through, then the underlying
// connection is closed and every further call returns ErrInjected.
type CutConn struct {
	net.Conn
	// N is the number of bytes (reads + writes combined) allowed through.
	N int64

	mu    sync.Mutex
	count int64
	cut   bool
}

// Write implements net.Conn.
func (c *CutConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	remaining := c.N - c.count
	if remaining <= 0 {
		c.sever()
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if int64(len(p)) <= remaining {
		c.count += int64(len(p))
		c.mu.Unlock()
		return c.Conn.Write(p)
	}
	// Boundary write: flush the budgeted prefix before severing, so the
	// remote observes a partial frame followed by a close — the signature
	// of a process dying mid-send.
	c.count += remaining
	n, _ := c.Conn.Write(p[:remaining])
	c.sever()
	c.mu.Unlock()
	return n, ErrInjected
}

// Read implements net.Conn.
func (c *CutConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	remaining := c.N - c.count
	if remaining <= 0 {
		c.sever()
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if int64(len(p)) > remaining {
		p = p[:remaining]
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.count += int64(n)
	if c.count >= c.N {
		c.sever()
	}
	c.mu.Unlock()
	return n, err
}

// sever closes the real connection once; callers hold c.mu. Closing (rather
// than just erroring locally) is what makes the remote side see the failure
// too, like a real crashed peer.
func (c *CutConn) sever() {
	if !c.cut {
		c.cut = true
		c.Conn.Close()
	}
}

// Cut reports whether the connection has been severed.
func (c *CutConn) Cut() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cut
}

// StallConn lets N written bytes through, then blocks every further Write
// until Release is closed — a peer that is alive at the TCP level but has
// stopped making progress, which must trip the fold deadline rather than
// hang it. Reads pass through untouched. Tests close Release during
// teardown so the stalled node's goroutines can drain.
type StallConn struct {
	net.Conn
	// N is the number of written bytes allowed before stalling.
	N int64
	// Release unblocks stalled writes when closed. Must be non-nil.
	Release chan struct{}

	mu      sync.Mutex
	written int64
	stalled bool
}

// Write implements net.Conn.
func (s *StallConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	if s.written >= s.N {
		s.stalled = true
		s.mu.Unlock()
		<-s.Release
		return s.Conn.Write(p)
	}
	s.written += int64(len(p))
	s.mu.Unlock()
	return s.Conn.Write(p)
}

// Stalled reports whether a write has hit the stall point.
func (s *StallConn) Stalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalled
}

// FlipConn flips bit Bit of the byte at read-stream offset Offset — a
// single-event corruption on the wire, which the frame CRC must catch. The
// connection analogue of FlipReader.
type FlipConn struct {
	net.Conn
	Offset int64
	Bit    uint8

	mu  sync.Mutex
	pos int64
}

// Read implements net.Conn.
func (f *FlipConn) Read(p []byte) (int, error) {
	n, err := f.Conn.Read(p)
	f.mu.Lock()
	if n > 0 && f.Offset >= f.pos && f.Offset < f.pos+int64(n) {
		p[f.Offset-f.pos] ^= 1 << (f.Bit % 8)
	}
	f.pos += int64(n)
	f.mu.Unlock()
	return n, err
}
