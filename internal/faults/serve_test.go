package faults

import (
	"strings"
	"testing"
	"time"

	"dropback/internal/tensor"
)

// echoReplica is a minimal Replica: it returns its input and reports a fixed
// weight footprint.
type echoReplica struct{}

func (echoReplica) Infer(x *tensor.Tensor) *tensor.Tensor { return x }
func (echoReplica) WeightBytes() (shared, private int)    { return 128, 64 }

func TestChaosReplicaPanicCadence(t *testing.T) {
	c := &ChaosReplica{R: echoReplica{}, PanicEvery: 3}
	x := tensor.New(1, 2)
	panics := 0
	for i := 1; i <= 9; i++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					panics++
					if !strings.Contains(p.(string), "injected") {
						t.Errorf("panic value %v, want injected marker", p)
					}
				}
			}()
			c.Infer(x)
		}()
	}
	if panics != 3 {
		t.Errorf("%d panics in 9 calls with PanicEvery=3, want 3", panics)
	}
	if c.Calls() != 9 {
		t.Errorf("Calls() = %d, want 9 (panicking calls count)", c.Calls())
	}
}

func TestChaosReplicaDelayAndSignals(t *testing.T) {
	entered := make(chan struct{}, 4)
	c := &ChaosReplica{R: echoReplica{}, Delay: 10 * time.Millisecond, Entered: entered}
	start := time.Now()
	c.Infer(tensor.New(1, 1))
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("Infer returned after %v, want >= 10ms delay", d)
	}
	select {
	case <-entered:
	default:
		t.Error("no entry signal received")
	}
	if sh, pr := c.WeightBytes(); sh != 128 || pr != 64 {
		t.Errorf("WeightBytes = (%d, %d), want pass-through (128, 64)", sh, pr)
	}
}

func TestChaosReplicaStall(t *testing.T) {
	stall := make(chan struct{})
	entered := make(chan struct{}, 1)
	c := &ChaosReplica{R: echoReplica{}, Stall: stall, Entered: entered}
	done := make(chan struct{})
	go func() { defer close(done); c.Infer(tensor.New(1, 1)) }()
	<-entered
	select {
	case <-done:
		t.Fatal("Infer returned while stalled")
	case <-time.After(20 * time.Millisecond):
	}
	close(stall)
	<-done
}
