package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a real loopback TCP connection, so the
// injectors are exercised over the same transport the training cluster uses
// (asynchronous buffers, real Close semantics).
func tcpPair(t *testing.T) (a, b net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		b, err = ln.Accept()
	}()
	a, derr := net.Dial("tcp", ln.Addr().String())
	if derr != nil {
		t.Fatal(derr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestCutConnSeversAfterBudget verifies the crash model end to end: bytes
// under the limit pass through, the boundary write is partial, every later
// call is ErrInjected, and the REMOTE side sees a real connection failure —
// like a peer process dying, not a polite local error.
func TestCutConnSeversAfterBudget(t *testing.T) {
	local, remote := tcpPair(t)
	cut := &CutConn{Conn: local, N: 10}

	if n, err := cut.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("write under budget: n=%d err=%v", n, err)
	}
	// This write crosses the 10-byte budget: 5 more bytes pass, then the
	// connection is severed mid-write.
	n, err := cut.Write([]byte("67890ABCDE"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("boundary write: n=%d err=%v, want 5 bytes and ErrInjected", n, err)
	}
	if !cut.Cut() {
		t.Fatal("Cut() false after severing")
	}
	if _, err := cut.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut write: %v", err)
	}
	if _, err := cut.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut read: %v", err)
	}

	// The remote end received exactly the bytes that passed, then EOF —
	// the view a healthy node has of a crashed peer.
	got, rerr := io.ReadAll(remote)
	if !bytes.Equal(got, []byte("1234567890")) {
		t.Fatalf("remote saw %q, want the 10 budgeted bytes", got)
	}
	if rerr != nil {
		t.Fatalf("remote read-to-EOF: %v", rerr)
	}
}

// TestCutConnCountsReads proves the budget spans both directions.
func TestCutConnCountsReads(t *testing.T) {
	local, remote := tcpPair(t)
	cut := &CutConn{Conn: local, N: 4}
	if _, err := remote.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := cut.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n > 4 {
		t.Fatalf("read %d bytes past the budget", n)
	}
	// The budget is spent (reads may arrive in smaller chunks, so drain).
	for !cut.Cut() {
		if _, err := cut.Read(buf); err != nil {
			break
		}
	}
	if _, err := cut.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget read: %v", err)
	}
}

// TestStallConnBlocksUntilReleased verifies the stalled-peer model: writes
// under the budget pass, the next write blocks (a live TCP connection making
// no progress), and closing Release unblocks it for teardown.
func TestStallConnBlocksUntilReleased(t *testing.T) {
	local, remote := tcpPair(t)
	release := make(chan struct{})
	stall := &StallConn{Conn: local, N: 3, Release: release}

	if _, err := stall.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if stall.Stalled() {
		t.Fatal("stalled before the budget")
	}

	wrote := make(chan error, 1)
	go func() {
		_, err := stall.Write([]byte("def"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write past the budget returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if !stall.Stalled() {
		t.Fatal("Stalled() false while a write is blocked")
	}

	close(release)
	if err := <-wrote; err != nil {
		t.Fatalf("released write: %v", err)
	}
	buf := make([]byte, 6)
	if _, err := io.ReadFull(remote, buf); err != nil || string(buf) != "abcdef" {
		t.Fatalf("remote saw %q (%v), want abcdef", buf, err)
	}
}

// TestStallConnReadsPassThrough: only writes stall; the injected node keeps
// receiving, which is what makes the fold deadline (not a read error) the
// detection path on the healthy side.
func TestStallConnReadsPassThrough(t *testing.T) {
	local, remote := tcpPair(t)
	stall := &StallConn{Conn: local, N: 0, Release: make(chan struct{})}
	if _, err := remote.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(stall, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("read through a stalled conn: %q (%v)", buf, err)
	}
}

// TestFlipConnFlipsExactlyOneBit streams bytes through a FlipConn and
// checks exactly the configured bit of the configured offset changed.
func TestFlipConnFlipsExactlyOneBit(t *testing.T) {
	local, remote := tcpPair(t)
	flip := &FlipConn{Conn: local, Offset: 5, Bit: 3}
	want := []byte("0123456789")
	go remote.Write(want)
	got := make([]byte, len(want))
	if _, err := io.ReadFull(flip, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		expect := want[i]
		if int64(i) == 5 {
			expect ^= 1 << 3
		}
		if got[i] != expect {
			t.Fatalf("byte %d: %02x, want %02x", i, got[i], expect)
		}
	}
}
