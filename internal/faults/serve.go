package faults

import (
	"sync/atomic"
	"time"

	"dropback/internal/serve"
	"dropback/internal/tensor"
)

// ChaosReplica wraps a serve.Replica with injectable misbehavior — the
// serve-side fault modes a robust server must contain: a slow replica (GC
// pause, noisy neighbor, thermal throttling), a panicking replica (latent
// bug or corrupt weights reached only on some inputs), and a stalled
// replica (deadlocked dependency) that blocks until released. Tests wire it
// through Config.NewSparseReplica or Config.Compile, so the chaos enters by
// the same seam a real model does.
//
// Like any Replica it is single-goroutine-only while checked out; the call
// counter is atomic anyway so tests can read it while the server runs.
type ChaosReplica struct {
	// R is the wrapped replica computing real answers.
	R serve.Replica
	// Delay is added to every Infer call before the forward pass.
	Delay time.Duration
	// PanicEvery makes every Nth Infer call panic (1 = every call, 0 =
	// never). The panic happens before the forward pass.
	PanicEvery int
	// Stall, when non-nil, blocks every Infer call until the channel is
	// closed — the stalled-consumer fault: the replica is checked out and
	// making no progress.
	Stall <-chan struct{}
	// Entered, when non-nil, gets a non-blocking signal as each Infer call
	// starts, so tests can observe that the replica is checked out and
	// inside the forward pass (stalled or about to be delayed).
	Entered chan<- struct{}

	calls atomic.Int64
}

// Infer applies the configured faults, then delegates to the wrapped
// replica.
func (c *ChaosReplica) Infer(x *tensor.Tensor) *tensor.Tensor {
	if c.Entered != nil {
		select {
		case c.Entered <- struct{}{}:
		default:
		}
	}
	if c.Stall != nil {
		<-c.Stall
	}
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	n := c.calls.Add(1)
	if c.PanicEvery > 0 && n%int64(c.PanicEvery) == 0 {
		panic("faults: injected inference panic")
	}
	return c.R.Infer(x)
}

// WeightBytes delegates to the wrapped replica.
func (c *ChaosReplica) WeightBytes() (shared, private int) {
	return c.R.WeightBytes()
}

// Calls returns how many Infer calls have been attempted (including ones
// that panicked).
func (c *ChaosReplica) Calls() int64 { return c.calls.Load() }
