package faults

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dropback/internal/models"
)

func TestFailingWriterStopsAtN(t *testing.T) {
	var buf bytes.Buffer
	fw := &FailingWriter{W: &buf, N: 10}
	if n, err := fw.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// Crosses the limit: 4 bytes land, then the injected error.
	if n, err := fw.Write(make([]byte, 6)); n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("boundary write: n=%d err=%v", n, err)
	}
	if n, err := fw.Write(make([]byte, 1)); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write: n=%d err=%v", n, err)
	}
	if buf.Len() != 10 || fw.Written() != 10 {
		t.Fatalf("wrote %d bytes (tracked %d), want 10", buf.Len(), fw.Written())
	}
}

func TestShortWriterTriggersBufioError(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&ShortWriter{W: &buf, Max: 3}, 16)
	if _, err := bw.Write(make([]byte, 64)); err != nil && err != io.ErrShortWrite {
		t.Fatalf("unexpected error class: %v", err)
	}
	err := bw.Flush()
	if err != io.ErrShortWrite {
		t.Fatalf("flush error = %v, want io.ErrShortWrite", err)
	}
}

func TestFlipReaderFlipsExactlyOneBit(t *testing.T) {
	src := make([]byte, 100)
	fr := &FlipReader{R: bytes.NewReader(src), Offset: 42, Bit: 3}
	got, err := io.ReadAll(iotest(fr, 7)) // odd chunk size crosses the offset
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0)
		if i == 42 {
			want = 1 << 3
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

// iotest forces small reads so the flip offset lands mid-stream.
func iotest(r io.Reader, chunk int) io.Reader {
	return readerFunc(func(p []byte) (int, error) {
		if len(p) > chunk {
			p = p[:chunk]
		}
		return r.Read(p)
	})
}

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

func TestFlipBitInFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := os.WriteFile(path, make([]byte, 32), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBitInFile(path, 5, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if got[5] != 1<<1 {
		t.Fatalf("byte 5 = %#x, want %#x", got[5], 1<<1)
	}
}

func TestNaNInjectorFiresOnce(t *testing.T) {
	m := models.ReducedMNISTMLP("fi", 8, 12, 12, 1, nil)
	inj := &NaNInjector{Step: 3, Index: 7}
	hook := inj.Hook()
	for step := 0; step < 6; step++ {
		m.Set.ZeroGrads()
		hook(step, m.Set)
		nans := 0
		for _, p := range m.Set.Params() {
			for _, g := range p.Grad.Data {
				if math.IsNaN(float64(g)) {
					nans++
				}
			}
		}
		want := 0
		if step == 3 {
			want = 1
		}
		if nans != want {
			t.Fatalf("step %d: %d NaN gradients, want %d", step, nans, want)
		}
	}
	if !inj.Fired() {
		t.Fatal("injector never fired")
	}
	// A replayed step 3 (post-rollback) must not re-fire.
	m.Set.ZeroGrads()
	hook(3, m.Set)
	if math.IsNaN(float64(m.Set.GetGrad(7))) {
		t.Fatal("injector fired twice")
	}
}
