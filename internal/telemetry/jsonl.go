package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Record kinds emitted on the JSONL stream.
const (
	KindRun   = "run"   // one per stream: run-level metadata
	KindStep  = "step"  // one per optimizer step
	KindEpoch = "epoch" // one per epoch, with memory telemetry
	KindGauge = "gauge" // latest value of a named gauge
	KindLayer = "layer" // per-layer span aggregate, written at Flush
)

// GaugePoint is one gauge observation.
type GaugePoint struct {
	Name  string  `json:"name"`
	Epoch int     `json:"epoch"`
	Value float64 `json:"value"`
}

// RunInfo is the stream's run-level metadata record.
type RunInfo struct {
	Label    string             `json:"label,omitempty"`
	Steps    int                `json:"steps"`
	Examples int64              `json:"examples"`
	Counters map[string]float64 `json:"counters,omitempty"`
}

// Record is one line of the JSONL telemetry stream: a kind discriminator
// plus exactly one populated payload.
type Record struct {
	Kind  string      `json:"kind"`
	Step  *StepSample `json:"step,omitempty"`
	Epoch *EpochStat  `json:"epoch,omitempty"`
	Gauge *GaugePoint `json:"gauge,omitempty"`
	Layer *LayerStat  `json:"layer,omitempty"`
	Run   *RunInfo    `json:"run,omitempty"`
}

// JSONLWriter encodes records one per line onto an io.Writer through a
// buffer; call Flush before reading the destination.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL encoder.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write encodes one record as a JSON line. The first error sticks and makes
// subsequent writes no-ops; Flush reports it.
func (w *JSONLWriter) Write(r Record) {
	if w == nil || w.err != nil {
		return
	}
	w.err = w.enc.Encode(r)
}

// Flush drains the buffer and returns the first error encountered.
func (w *JSONLWriter) Flush() error {
	if w == nil {
		return nil
	}
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// DecodeJSONL parses a JSONL telemetry stream back into records — the
// inverse of JSONLWriter, used by tests and external tooling.
func DecodeJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: decoding JSONL record %d: %w", len(out), err)
		}
		if rec.Kind == "" {
			return out, fmt.Errorf("telemetry: JSONL record %d has no kind", len(out))
		}
		out = append(out, rec)
	}
}
