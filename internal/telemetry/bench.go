package telemetry

import (
	"encoding/json"
	"os"
	"time"
)

// BenchEntry is one point of the benchmark trajectory, in the
// github-action-benchmark "custom" JSON shape so BENCH_telemetry.json can be
// archived and charted directly by CI tooling.
type BenchEntry struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
}

// BenchEntries distills the collector's aggregates into benchmark points:
// step-latency quantiles, throughput, per-layer per-call cost, and epoch
// memory telemetry. prefix namespaces the entries (e.g. "mnist100/").
func (c *Collector) BenchEntries(prefix string) []BenchEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []BenchEntry
	if c.steps > 0 {
		out = append(out,
			BenchEntry{prefix + "step_latency_p50", "ns", float64(c.stepLatency.Quantile(0.5))},
			BenchEntry{prefix + "step_latency_p95", "ns", float64(c.stepLatency.Quantile(0.95))},
			BenchEntry{prefix + "step_latency_max", "ns", float64(c.stepLatency.Max())},
		)
		if total := time.Duration(c.stepLatency.sum); total > 0 {
			out = append(out, BenchEntry{prefix + "throughput", "examples/sec",
				float64(c.examples) / total.Seconds()})
		}
	}
	for _, k := range c.layerOrder {
		st := c.layers[k]
		if st.Count == 0 {
			continue
		}
		out = append(out, BenchEntry{
			Name:  prefix + "layer/" + st.Layer + "/" + st.Phase,
			Unit:  "ns/call",
			Value: float64(st.Total) / float64(st.Count),
		})
	}
	if n := len(c.epochs); n > 0 {
		last := c.epochs[n-1]
		out = append(out,
			BenchEntry{prefix + "heap_alloc", "bytes", float64(last.HeapAllocBytes)},
			BenchEntry{prefix + "epoch_alloc_delta", "bytes", float64(last.AllocDeltaBytes)},
		)
	}
	return out
}

// WriteBench writes benchmark entries as an indented JSON array — the
// BENCH_telemetry.json artifact CI archives on every run.
func WriteBench(path string, entries []BenchEntry) error {
	if entries == nil {
		entries = []BenchEntry{}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBench reads back a benchmark-entry file (for tests and tooling).
func ReadBench(path string) ([]BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []BenchEntry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
