// Package telemetry is the training stack's zero-dependency tracing and
// metrics subsystem. DropBack's contribution is a systems claim — fewer
// tracked weights should mean less memory traffic and faster training — so
// every performance PR needs a trustworthy way to show where wall-clock and
// allocation time go. This package provides it:
//
//   - per-layer forward/backward span timing, collected by the nn layer
//     containers through the Recorder interface;
//   - per-step counters: loss, examples/sec throughput, batch latency
//     quantiles (p50/p95/max);
//   - per-epoch heap and GC telemetry via runtime.ReadMemStats;
//   - DropBack-specific gauges (tracked-set size, churn, regenerated-weight
//     counts) sourced from internal/core through the trainer;
//   - structured sinks: a JSONL stream, a human-readable summary table, and
//     a BENCH_telemetry.json export for the benchmark trajectory;
//   - opt-in pprof CPU/heap capture for the CLIs.
//
// The default recorder is Nop: a disabled hot path pays a nil check or a
// single dynamic call that does nothing and allocates nothing, so
// instrumentation can stay compiled into the training loop permanently.
// Recorders only observe — they never touch weights, gradients, or random
// state — so telemetry on/off cannot perturb training (the determinism
// regression test at the repo root proves this bit-for-bit).
package telemetry

import "time"

// Gauge names for the tensor-workspace reuse counters the trainer exports at
// every epoch boundary. They are cumulative process-wide totals (see
// tensor.WorkspaceStats); paired with the epoch heap-delta samples they show
// whether the hot path is reusing scratch buffers instead of allocating.
const (
	// GaugeWorkspaceHits counts buffer requests served from an existing slot.
	GaugeWorkspaceHits = "workspace/hits"
	// GaugeWorkspaceMisses counts requests that had to allocate or grow.
	GaugeWorkspaceMisses = "workspace/misses"
	// GaugeWorkspaceBytesReused totals bytes handed out without allocating.
	GaugeWorkspaceBytesReused = "workspace/bytes_reused"
)

// Names for the data-parallel training executor's telemetry.
const (
	// GaugeTrainWorkers is the trainer's worker count (1 = sequential),
	// exported at every epoch boundary.
	GaugeTrainWorkers = "train/workers"
	// CounterTrainShardSeconds accumulates per-shard wall time across all
	// workers; divided by wall-clock step time it shows parallel efficiency.
	CounterTrainShardSeconds = "train/shard_seconds"
)

// Names for the multi-node training executor's telemetry.
const (
	// GaugeDistWorld is the cluster size, exported at every epoch boundary.
	GaugeDistWorld = "dist/world"
	// CounterDistBytesSent accumulates bytes written to all peers — true
	// bytes-on-wire from the socket-level counters, which the O(k) wire
	// test asserts exactly against the analytical frame size.
	CounterDistBytesSent = "dist/bytes_sent"
	// CounterDistBytesReceived accumulates bytes read from all peers.
	CounterDistBytesReceived = "dist/bytes_received"
	// CounterDistFoldWaitSeconds accumulates wall time each step spends in
	// the gradient exchange (send + wait for every peer's frame) — the
	// communication share of the step.
	CounterDistFoldWaitSeconds = "dist/fold_wait_seconds"
)

// DistPeerCounter names the per-peer byte counter for one direction
// ("sent" or "received"), e.g. dist/peer2/sent.
func DistPeerCounter(rank int, direction string) string {
	return "dist/peer" + itoa(rank) + "/" + direction
}

// itoa is a minimal non-negative integer formatter, avoiding strconv in a
// package kept dependency-light for the zero-alloc nop path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Phase distinguishes the two halves of a training step a layer span can
// belong to.
type Phase uint8

const (
	// PhaseForward is the inference/forward pass.
	PhaseForward Phase = iota
	// PhaseBackward is the gradient/backward pass.
	PhaseBackward
)

// String returns the phase name used in JSONL records and summary tables.
func (p Phase) String() string {
	if p == PhaseBackward {
		return "backward"
	}
	return "forward"
}

// StepSample is one optimizer step's worth of training counters. Latency is
// the wall time of the full step (forward, backward, optimizer, constraint).
type StepSample struct {
	Epoch    int           `json:"epoch"`
	Step     int           `json:"step"`
	Loss     float64       `json:"loss"`
	Examples int           `json:"examples"`
	Latency  time.Duration `json:"latency_ns"`
}

// ExamplesPerSec is the step's training throughput.
func (s StepSample) ExamplesPerSec() float64 {
	if s.Latency <= 0 {
		return 0
	}
	return float64(s.Examples) / s.Latency.Seconds()
}

// EpochSample is one epoch's worth of training counters as reported by the
// trainer. Examples counts training examples consumed; Duration is the wall
// time of the training phase (validation excluded).
type EpochSample struct {
	Epoch     int           `json:"epoch"`
	TrainLoss float64       `json:"train_loss"`
	TrainAcc  float64       `json:"train_acc"`
	ValLoss   float64       `json:"val_loss"`
	ValAcc    float64       `json:"val_acc"`
	Examples  int           `json:"examples"`
	Duration  time.Duration `json:"duration_ns"`
}

// ExamplesPerSec is the epoch's training throughput.
func (e EpochSample) ExamplesPerSec() float64 {
	if e.Duration <= 0 {
		return 0
	}
	return float64(e.Examples) / e.Duration.Seconds()
}

// Recorder receives telemetry events from the training stack. Implementations
// must be cheap when disabled: every producer either holds a nil Recorder or
// guards its instrumentation behind Enabled().
//
// Span events arrive strictly nested per phase (a BeginSpan/EndSpan pair
// encloses the pairs of any layers nested inside it), which lets a collector
// separate a container's self time from its children's time.
type Recorder interface {
	// Enabled reports whether events are being collected. Producers use it
	// to skip the time.Now() calls that bracket spans and steps.
	Enabled() bool
	// BeginSpan opens a timing span for one layer in one phase.
	BeginSpan(phase Phase, name string)
	// EndSpan closes the innermost open span; name and phase must match the
	// corresponding BeginSpan.
	EndSpan(phase Phase, name string)
	// Counter accumulates delta into a named monotonic counter (e.g.
	// DropBack tracked-set churn per step).
	Counter(name string, delta float64)
	// Gauge records the latest value of a named gauge (e.g. tracked-set
	// size at an epoch boundary).
	Gauge(name string, v float64)
	// StepDone reports a completed optimizer step.
	StepDone(s StepSample)
	// EpochDone reports a completed epoch.
	EpochDone(e EpochSample)
}

// Nop is the disabled recorder: every method does nothing and allocates
// nothing. It is the default wherever a Recorder is optional.
type Nop struct{}

// Enabled implements Recorder; it always reports false.
func (Nop) Enabled() bool { return false }

// BeginSpan implements Recorder.
func (Nop) BeginSpan(Phase, string) {}

// EndSpan implements Recorder.
func (Nop) EndSpan(Phase, string) {}

// Counter implements Recorder.
func (Nop) Counter(string, float64) {}

// Gauge implements Recorder.
func (Nop) Gauge(string, float64) {}

// StepDone implements Recorder.
func (Nop) StepDone(StepSample) {}

// EpochDone implements Recorder.
func (Nop) EpochDone(EpochSample) {}

// OrNop returns rec if non-nil and Nop otherwise, so callers can thread an
// optional recorder without nil checks at every call site. A nil *Collector
// stored in the interface (the easy mistake when threading an optional
// collector through a config struct) counts as nil too.
func OrNop(rec Recorder) Recorder {
	if rec == nil {
		return Nop{}
	}
	if c, ok := rec.(*Collector); ok && c == nil {
		return Nop{}
	}
	return rec
}
