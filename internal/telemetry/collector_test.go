package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSpanNestingSelfTime(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	c.BeginSpan(PhaseForward, "net")
	c.BeginSpan(PhaseForward, "net/fc1")
	busyWork()
	c.EndSpan(PhaseForward, "net/fc1")
	c.BeginSpan(PhaseForward, "net/fc2")
	busyWork()
	c.EndSpan(PhaseForward, "net/fc2")
	c.EndSpan(PhaseForward, "net")

	stats := map[string]LayerStat{}
	for _, st := range c.LayerStats() {
		stats[st.Layer] = st
	}
	outer, ok := stats["net"]
	if !ok {
		t.Fatal("outer span missing")
	}
	fc1, fc2 := stats["net/fc1"], stats["net/fc2"]
	if fc1.Count != 1 || fc2.Count != 1 || outer.Count != 1 {
		t.Fatalf("span counts wrong: %+v", stats)
	}
	// The container's total encloses both children; its self time is the
	// total minus exactly the children's totals.
	children := fc1.Total + fc2.Total
	if outer.Total < children {
		t.Fatalf("outer total %v < children %v", outer.Total, children)
	}
	if got, want := outer.Self, outer.Total-children; got != want {
		t.Fatalf("outer self %v, want total-children %v", got, want)
	}
	if fc1.Self != fc1.Total {
		t.Fatalf("leaf self %v != total %v", fc1.Self, fc1.Total)
	}
}

func TestSpanDeepNestingAttributesToImmediateParent(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	c.BeginSpan(PhaseBackward, "a")
	c.BeginSpan(PhaseBackward, "b")
	c.BeginSpan(PhaseBackward, "c")
	busyWork()
	c.EndSpan(PhaseBackward, "c")
	c.EndSpan(PhaseBackward, "b")
	c.EndSpan(PhaseBackward, "a")
	stats := map[string]LayerStat{}
	for _, st := range c.LayerStats() {
		stats[st.Layer] = st
	}
	a, b, cc := stats["a"], stats["b"], stats["c"]
	if a.Self != a.Total-b.Total {
		t.Fatalf("a self %v want %v", a.Self, a.Total-b.Total)
	}
	if b.Self != b.Total-cc.Total {
		t.Fatalf("b self %v want %v", b.Self, b.Total-cc.Total)
	}
	if a.Phase != "backward" {
		t.Fatalf("phase = %q, want backward", a.Phase)
	}
}

func TestUnbalancedSpansAreIgnored(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	c.EndSpan(PhaseForward, "never-opened") // must not panic
	c.BeginSpan(PhaseForward, "x")
	c.EndSpan(PhaseForward, "y") // mismatched name: ignored, x stays open
	c.EndSpan(PhaseForward, "x")
	stats := c.LayerStats()
	if len(stats) != 1 || stats[0].Layer != "x" {
		t.Fatalf("stats = %+v, want exactly one x span", stats)
	}
}

func TestStepAggregation(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	for i := 1; i <= 4; i++ {
		c.StepDone(StepSample{Epoch: 1, Step: i, Loss: 0.5, Examples: 32,
			Latency: time.Duration(i) * time.Millisecond})
	}
	if c.Steps() != 4 {
		t.Fatalf("steps = %d", c.Steps())
	}
	if got := c.StepLatencyQuantile(1); got != 4*time.Millisecond {
		t.Fatalf("max latency = %v", got)
	}
	// 128 examples over 10ms total.
	if got := c.ExamplesPerSec(); got < 12700 || got > 12900 {
		t.Fatalf("examples/sec = %v, want ~12800", got)
	}
}

func TestCountersAndGauges(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	c.Counter("dropback/swaps", 3)
	c.Counter("dropback/swaps", 2)
	c.Gauge("dropback/tracked_set_size", 1500)
	c.Gauge("dropback/tracked_set_size", 1400)
	if got := c.Counters()["dropback/swaps"]; got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}
	if got := c.Gauges()["dropback/tracked_set_size"]; got != 1400 {
		t.Fatalf("gauge = %v, want latest value 1400", got)
	}
}

func TestWriteSummaryMentionsLayersAndThroughput(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	c.BeginSpan(PhaseForward, "net/fc1")
	busyWork()
	c.EndSpan(PhaseForward, "net/fc1")
	c.StepDone(StepSample{Epoch: 1, Step: 1, Loss: 1, Examples: 32, Latency: time.Millisecond})
	var buf bytes.Buffer
	c.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"net/fc1", "forward", "examples/sec", "p95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestNopRecorderAllocations proves the disabled path allocates nothing —
// the guarantee that lets instrumentation stay compiled into hot loops.
func TestNopRecorderAllocations(t *testing.T) {
	var rec Recorder = Nop{}
	sample := StepSample{Epoch: 1, Step: 1, Loss: 0.1, Examples: 32, Latency: time.Millisecond}
	allocs := testing.AllocsPerRun(100, func() {
		if rec.Enabled() {
			t.Fatal("nop recorder reports enabled")
		}
		rec.BeginSpan(PhaseForward, "layer")
		rec.EndSpan(PhaseForward, "layer")
		rec.Counter("c", 1)
		rec.Gauge("g", 1)
		rec.StepDone(sample)
		rec.EpochDone(EpochSample{Epoch: 1})
	})
	if allocs != 0 {
		t.Fatalf("nop recorder path allocates %v per run, want 0", allocs)
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Fatal("OrNop(nil) is not Nop")
	}
	c := NewCollector(CollectorOptions{})
	if OrNop(c) != Recorder(c) {
		t.Fatal("OrNop(collector) did not pass through")
	}
}

// busyWork burns a little CPU so spans have non-zero width without relying
// on timer sleeps.
func busyWork() {
	s := 0.0
	for i := 0; i < 20000; i++ {
		s += float64(i%7) * 1e-3
	}
	if s < 0 {
		panic("unreachable")
	}
}
