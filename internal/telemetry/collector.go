package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// LayerStat is the aggregate of every span recorded for one (layer, phase)
// pair. Total includes time spent in nested child spans (a Sequential's span
// encloses its children); Self excludes it, so summing Self across all
// layers of a phase gives that phase's wall time exactly once.
type LayerStat struct {
	Layer string        `json:"layer"`
	Phase string        `json:"phase"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Self  time.Duration `json:"self_ns"`
	Max   time.Duration `json:"max_ns"`
}

// EpochStat is an EpochSample augmented with throughput and the memory
// telemetry the collector samples at each epoch boundary.
type EpochStat struct {
	EpochSample
	ExamplesPerSec float64 `json:"examples_per_sec"`
	// HeapAllocBytes is the live heap at the epoch boundary.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// AllocDeltaBytes is cumulative allocation during the epoch.
	AllocDeltaBytes uint64 `json:"alloc_delta_bytes"`
	// NumGC is the number of GC cycles completed during the epoch.
	NumGC uint32 `json:"num_gc"`
	// GCPause is total stop-the-world pause time accrued during the epoch.
	GCPause time.Duration `json:"gc_pause_ns"`
}

// CollectorOptions configures a Collector.
type CollectorOptions struct {
	// Sink, when non-nil, receives the live JSONL stream.
	Sink io.Writer
	// StepEvery thins the per-step JSONL records to every Nth step
	// (aggregates still see every step). 0 or 1 writes all of them.
	StepEvery int
	// Label annotates the stream's run record.
	Label string
}

type layerKey struct {
	phase Phase
	name  string
}

type spanFrame struct {
	key   layerKey
	start time.Time
	child time.Duration
}

// Collector is the standard Recorder: it aggregates layer spans, step and
// epoch counters, and memory telemetry, and optionally streams JSONL as it
// goes. It is safe for concurrent use, though span nesting is tracked per
// collector — concurrent trainers should each own one.
type Collector struct {
	mu    sync.Mutex
	opts  CollectorOptions
	out   *JSONLWriter
	stack []spanFrame

	layers     map[layerKey]*LayerStat
	layerOrder []layerKey

	stepLatency Histogram
	steps       int
	examples    int64
	lossSum     float64

	counters map[string]float64
	gauges   map[string]float64
	epochs   []EpochStat

	lastMem   runtime.MemStats
	haveMem   bool
	flushed   bool
	lastEpoch int
}

// NewCollector builds an enabled recorder with the given options.
func NewCollector(opts CollectorOptions) *Collector {
	c := &Collector{
		opts:     opts,
		layers:   make(map[layerKey]*LayerStat),
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
	}
	if opts.Sink != nil {
		c.out = NewJSONLWriter(opts.Sink)
	}
	return c
}

// Enabled implements Recorder.
func (c *Collector) Enabled() bool { return true }

// BeginSpan implements Recorder.
func (c *Collector) BeginSpan(phase Phase, name string) {
	c.mu.Lock()
	c.stack = append(c.stack, spanFrame{key: layerKey{phase, name}, start: time.Now()})
	c.mu.Unlock()
}

// EndSpan implements Recorder. Unbalanced EndSpan calls are ignored rather
// than panicking: telemetry must never take training down.
func (c *Collector) EndSpan(phase Phase, name string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.stack)
	if n == 0 {
		return
	}
	fr := c.stack[n-1]
	if fr.key.phase != phase || fr.key.name != name {
		return
	}
	c.stack = c.stack[:n-1]
	total := now.Sub(fr.start)
	self := total - fr.child
	if self < 0 {
		self = 0
	}
	if n >= 2 {
		c.stack[n-2].child += total
	}
	st, ok := c.layers[fr.key]
	if !ok {
		st = &LayerStat{Layer: name, Phase: phase.String()}
		c.layers[fr.key] = st
		c.layerOrder = append(c.layerOrder, fr.key)
	}
	st.Count++
	st.Total += total
	st.Self += self
	if total > st.Max {
		st.Max = total
	}
}

// Counter implements Recorder.
func (c *Collector) Counter(name string, delta float64) {
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Gauge implements Recorder. Each observation is also streamed as a JSONL
// gauge record, stamped with the most recently completed epoch.
func (c *Collector) Gauge(name string, v float64) {
	c.mu.Lock()
	c.gauges[name] = v
	g := GaugePoint{Name: name, Epoch: c.lastEpoch + 1, Value: v}
	c.out.Write(Record{Kind: KindGauge, Gauge: &g})
	c.mu.Unlock()
}

// StepDone implements Recorder.
func (c *Collector) StepDone(s StepSample) {
	c.mu.Lock()
	c.stepLatency.Observe(s.Latency)
	c.steps++
	c.examples += int64(s.Examples)
	c.lossSum += s.Loss
	every := c.opts.StepEvery
	if every <= 1 || s.Step%every == 0 {
		ss := s
		c.out.Write(Record{Kind: KindStep, Step: &ss})
	}
	c.mu.Unlock()
}

// EpochDone implements Recorder. It samples runtime.ReadMemStats and derives
// per-epoch deltas for allocation volume and GC pauses.
func (c *Collector) EpochDone(e EpochSample) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.mu.Lock()
	st := EpochStat{
		EpochSample:    e,
		ExamplesPerSec: e.ExamplesPerSec(),
		HeapAllocBytes: ms.HeapAlloc,
	}
	if c.haveMem {
		st.AllocDeltaBytes = ms.TotalAlloc - c.lastMem.TotalAlloc
		st.NumGC = ms.NumGC - c.lastMem.NumGC
		st.GCPause = time.Duration(ms.PauseTotalNs - c.lastMem.PauseTotalNs)
	}
	c.lastMem = ms
	c.haveMem = true
	c.lastEpoch = e.Epoch
	c.epochs = append(c.epochs, st)
	c.out.Write(Record{Kind: KindEpoch, Epoch: &st})
	c.mu.Unlock()
}

// LayerStats returns the per-layer aggregates in first-seen order.
func (c *Collector) LayerStats() []LayerStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LayerStat, 0, len(c.layerOrder))
	for _, k := range c.layerOrder {
		out = append(out, *c.layers[k])
	}
	return out
}

// Epochs returns the recorded epoch statistics.
func (c *Collector) Epochs() []EpochStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]EpochStat(nil), c.epochs...)
}

// Counters returns a copy of the counter map.
func (c *Collector) Counters() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of the latest gauge values.
func (c *Collector) Gauges() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.gauges))
	for k, v := range c.gauges {
		out[k] = v
	}
	return out
}

// Steps returns the number of optimizer steps observed.
func (c *Collector) Steps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}

// StepLatencyQuantile returns the q-th quantile of observed step latencies.
func (c *Collector) StepLatencyQuantile(q float64) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stepLatency.Quantile(q)
}

// ExamplesPerSec returns overall training throughput: total examples over
// total step latency.
func (c *Collector) ExamplesPerSec() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := time.Duration(c.stepLatency.sum)
	if total <= 0 {
		return 0
	}
	return float64(c.examples) / total.Seconds()
}

// Flush writes the terminal records (per-layer aggregates and the run
// summary) and drains the JSONL buffer. Safe to call more than once; the
// terminal records are written only on the first call.
func (c *Collector) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.flushed {
		c.flushed = true
		for _, k := range c.layerOrder {
			st := *c.layers[k]
			c.out.Write(Record{Kind: KindLayer, Layer: &st})
		}
		run := RunInfo{Label: c.opts.Label, Steps: c.steps, Examples: c.examples}
		if len(c.counters) > 0 {
			run.Counters = make(map[string]float64, len(c.counters))
			for k, v := range c.counters {
				run.Counters[k] = v
			}
		}
		c.out.Write(Record{Kind: KindRun, Run: &run})
	}
	return c.out.Flush()
}

// WriteSummary renders the human-readable per-run report: step latency
// quantiles, throughput, the per-layer timing table (sorted by total time,
// descending), counters, and gauges.
func (c *Collector) WriteSummary(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(w, "telemetry: %d steps, %d examples\n", c.steps, c.examples)
	if c.steps > 0 {
		fmt.Fprintf(w, "  step latency p50 %v  p95 %v  max %v  (mean %v)\n",
			c.stepLatency.Quantile(0.5).Round(time.Microsecond),
			c.stepLatency.Quantile(0.95).Round(time.Microsecond),
			c.stepLatency.Max().Round(time.Microsecond),
			c.stepLatency.Mean().Round(time.Microsecond))
		total := time.Duration(c.stepLatency.sum)
		if total > 0 {
			fmt.Fprintf(w, "  throughput %.1f examples/sec\n", float64(c.examples)/total.Seconds())
		}
	}
	if len(c.layerOrder) > 0 {
		fmt.Fprintf(w, "  %-28s %-8s %8s %12s %12s %12s\n", "layer", "phase", "calls", "total", "self", "max")
		keys := append([]layerKey(nil), c.layerOrder...)
		sort.SliceStable(keys, func(i, j int) bool {
			return c.layers[keys[i]].Total > c.layers[keys[j]].Total
		})
		for _, k := range keys {
			st := c.layers[k]
			fmt.Fprintf(w, "  %-28s %-8s %8d %12v %12v %12v\n",
				st.Layer, st.Phase, st.Count,
				st.Total.Round(time.Microsecond), st.Self.Round(time.Microsecond),
				st.Max.Round(time.Microsecond))
		}
	}
	if len(c.counters) > 0 {
		names := make([]string, 0, len(c.counters))
		for n := range c.counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "  counter %-32s %.0f\n", n, c.counters[n])
		}
	}
	if len(c.gauges) > 0 {
		names := make([]string, 0, len(c.gauges))
		for n := range c.gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "  gauge   %-32s %.0f\n", n, c.gauges[n])
		}
	}
}
