package telemetry

import (
	"sort"
	"time"
)

// Histogram collects duration samples and answers quantile queries. Samples
// are kept exactly (training runs here are at most a few hundred thousand
// steps); sorting happens lazily on the first quantile query after an
// insert.
type Histogram struct {
	samples []float64 // nanoseconds
	sorted  bool
	sum     float64
	max     float64
}

// Observe adds one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	v := float64(d)
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the mean sample as a duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(len(h.samples)))
}

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using nearest-rank on the
// sorted samples, so Quantile(0.5) of [1,2,3] is exactly 2. Returns 0 when
// empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return time.Duration(h.samples[0])
	}
	if q >= 1 {
		return time.Duration(h.samples[n-1])
	}
	// Nearest-rank: ceil(q*n) converted to a zero-based index.
	rank := int(q*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return time.Duration(h.samples[rank])
}
