package telemetry

import (
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..100 ms inserted out of order.
	for i := 100; i >= 1; i-- {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.5, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestHistogramInterleavedObserveAndQuery(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(1 * time.Millisecond)
	if got := h.Quantile(0.5); got != 1*time.Millisecond {
		t.Fatalf("p50 of {1,3} = %v", got)
	}
	// A later insert must invalidate the sorted cache.
	h.Observe(2 * time.Millisecond)
	if got := h.Quantile(0.5); got != 2*time.Millisecond {
		t.Fatalf("p50 of {1,2,3} = %v, want 2ms", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}
