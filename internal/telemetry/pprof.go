package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that ends profiling and closes the file. The CLIs call this when
// the -cpuprofile flag is set.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: starting CPU profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile to path after forcing a GC so the
// profile reflects live objects. The CLIs call this when -memprofile is set.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: creating heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("telemetry: writing heap profile: %w", err)
	}
	return nil
}
