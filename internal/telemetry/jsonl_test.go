package telemetry

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector(CollectorOptions{Sink: &buf, Label: "roundtrip"})
	c.BeginSpan(PhaseForward, "net/fc1")
	busyWork()
	c.EndSpan(PhaseForward, "net/fc1")
	step := StepSample{Epoch: 1, Step: 1, Loss: 0.25, Examples: 32, Latency: 3 * time.Millisecond}
	c.StepDone(step)
	c.Gauge("dropback/tracked_set_size", 1500)
	c.EpochDone(EpochSample{Epoch: 1, TrainLoss: 0.5, TrainAcc: 0.9, ValLoss: 0.6,
		ValAcc: 0.85, Examples: 32, Duration: 10 * time.Millisecond})
	c.Counter("dropback/swaps", 7)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string][]Record{}
	for _, r := range recs {
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	if len(byKind[KindStep]) != 1 || !reflect.DeepEqual(*byKind[KindStep][0].Step, step) {
		t.Fatalf("step record did not round-trip: %+v", byKind[KindStep])
	}
	ep := byKind[KindEpoch]
	if len(ep) != 1 || ep[0].Epoch.ValAcc != 0.85 || ep[0].Epoch.ExamplesPerSec != 3200 {
		t.Fatalf("epoch record wrong: %+v", ep)
	}
	g := byKind[KindGauge]
	if len(g) != 1 || g[0].Gauge.Name != "dropback/tracked_set_size" || g[0].Gauge.Value != 1500 {
		t.Fatalf("gauge record wrong: %+v", g)
	}
	ly := byKind[KindLayer]
	if len(ly) != 1 || ly[0].Layer.Layer != "net/fc1" || ly[0].Layer.Phase != "forward" || ly[0].Layer.Count != 1 {
		t.Fatalf("layer record wrong: %+v", ly)
	}
	run := byKind[KindRun]
	if len(run) != 1 || run[0].Run.Label != "roundtrip" || run[0].Run.Steps != 1 ||
		run[0].Run.Counters["dropback/swaps"] != 7 {
		t.Fatalf("run record wrong: %+v", run)
	}
}

func TestJSONLFlushIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector(CollectorOptions{Sink: &buf})
	c.StepDone(StepSample{Epoch: 1, Step: 1, Examples: 8, Latency: time.Millisecond})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	n := len(buf.Bytes())
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(buf.Bytes()) != n {
		t.Fatal("second Flush rewrote terminal records")
	}
}

func TestJSONLStepThinning(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector(CollectorOptions{Sink: &buf, StepEvery: 5})
	for i := 1; i <= 20; i++ {
		c.StepDone(StepSample{Epoch: 1, Step: i, Examples: 8, Latency: time.Millisecond})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for _, r := range recs {
		if r.Kind == KindStep {
			steps++
		}
	}
	if steps != 4 {
		t.Fatalf("thinned stream has %d step records, want 4", steps)
	}
	// Aggregates still see every step.
	if c.Steps() != 20 {
		t.Fatalf("aggregate steps = %d, want 20", c.Steps())
	}
}

func TestDecodeJSONLRejectsKindlessRecords(t *testing.T) {
	_, err := DecodeJSONL(strings.NewReader("{\"step\":{\"epoch\":1}}\n"))
	if err == nil {
		t.Fatal("expected error for record without kind")
	}
}

func TestBenchExportRoundTrip(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	c.BeginSpan(PhaseForward, "net/fc1")
	busyWork()
	c.EndSpan(PhaseForward, "net/fc1")
	c.StepDone(StepSample{Epoch: 1, Step: 1, Examples: 32, Latency: 2 * time.Millisecond})
	c.EpochDone(EpochSample{Epoch: 1, Examples: 32, Duration: 5 * time.Millisecond})
	entries := c.BenchEntries("mnist100/")
	path := filepath.Join(t.TempDir(), "BENCH_telemetry.json")
	if err := WriteBench(path, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, back) {
		t.Fatalf("bench entries did not round-trip:\n%+v\n%+v", entries, back)
	}
	names := map[string]bool{}
	for _, e := range back {
		names[e.Name] = true
	}
	for _, want := range []string{
		"mnist100/step_latency_p50", "mnist100/throughput",
		"mnist100/layer/net/fc1/forward", "mnist100/heap_alloc",
	} {
		if !names[want] {
			t.Fatalf("bench export missing %q; have %v", want, names)
		}
	}
}
