package xorshift

import (
	"math"
	"testing"
)

// A small randomness battery over the generators the regeneration contract
// depends on: monobit balance, byte-frequency chi-squared, and serial
// correlation. These are not NIST-strength, but they catch the classic
// xorshift implementation mistakes (wrong taps, state truncation) that
// would silently skew every initialization in the repository.

// bitBalance returns the fraction of one-bits over n outputs of next().
func bitBalance(n int, next func() uint32) float64 {
	ones := 0
	for i := 0; i < n; i++ {
		v := next()
		for b := 0; b < 32; b++ {
			if v&(1<<b) != 0 {
				ones++
			}
		}
	}
	return float64(ones) / float64(32*n)
}

// byteChi2 returns the chi-squared statistic of byte frequencies over n
// outputs (4n bytes, 256 bins; expected ≈ 255 for random data).
func byteChi2(n int, next func() uint32) float64 {
	var counts [256]int
	for i := 0; i < n; i++ {
		v := next()
		counts[byte(v)]++
		counts[byte(v>>8)]++
		counts[byte(v>>16)]++
		counts[byte(v>>24)]++
	}
	expected := float64(4*n) / 256
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// serialCorrelation returns the lag-1 correlation of the uniform-[0,1)
// stream.
func serialCorrelation(n int, next func() float64) float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = next()
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestMonobitBalance(t *testing.T) {
	const n = 50000
	g64 := NewState64(12345)
	gens := map[string]func() uint32{
		"xorshift32":  NewState32(12345).Next,
		"xorshift64":  func() uint32 { return uint32(g64.Next()) },
		"xorshift128": NewState128(12345).Next,
	}
	for name, next := range gens {
		frac := bitBalance(n, next)
		if math.Abs(frac-0.5) > 0.002 {
			t.Errorf("%s: one-bit fraction %v, want ~0.5", name, frac)
		}
	}
}

func TestByteFrequencyChi2(t *testing.T) {
	// 255 dof: the statistic should fall well inside [180, 340] for random
	// data (roughly ±4σ).
	const n = 100000
	gens := map[string]func() uint32{
		"xorshift32":  NewState32(999).Next,
		"xorshift128": NewState128(999).Next,
	}
	for name, next := range gens {
		chi2 := byteChi2(n, next)
		if chi2 < 180 || chi2 > 340 {
			t.Errorf("%s: byte chi² = %v, outside [180, 340]", name, chi2)
		}
	}
}

func TestSerialCorrelationLow(t *testing.T) {
	const n = 100000
	g64 := NewState64(77)
	if r := serialCorrelation(n, g64.Float64); math.Abs(r) > 0.01 {
		t.Errorf("xorshift64 lag-1 correlation %v too high", r)
	}
	g128 := NewState128(77)
	if r := serialCorrelation(n, func() float64 { return float64(g128.Float32()) }); math.Abs(r) > 0.01 {
		t.Errorf("xorshift128 lag-1 correlation %v too high", r)
	}
	// The indexed stream (DropBack's regeneration path) must also be
	// serially uncorrelated across adjacent indices.
	i := uint64(0)
	indexed := func() float64 {
		v := float64(IndexedUniform(5, i))
		i++
		return v
	}
	if r := serialCorrelation(n, indexed); math.Abs(r) > 0.01 {
		t.Errorf("indexed stream lag-1 correlation %v too high", r)
	}
}

func TestState128ZeroSeedRemapped(t *testing.T) {
	g := NewState128(0)
	if g.x|g.y|g.z|g.w == 0 {
		t.Fatal("all-zero state must be remapped")
	}
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		seen[g.Next()] = true
	}
	if len(seen) < 990 {
		t.Fatalf("xorshift128 emitted %d distinct values of 1000", len(seen))
	}
}

func TestState128Float32Range(t *testing.T) {
	g := NewState128(42)
	for i := 0; i < 10000; i++ {
		f := g.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestState128DistinctSeedsDiverge(t *testing.T) {
	a, b := NewState128(1), NewState128(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("distinct seeds coincide on %d of 1000 outputs", same)
	}
}
