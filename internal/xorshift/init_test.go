package xorshift

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegenerateMatchesFill(t *testing.T) {
	// The core DropBack contract: regenerating element i later must be
	// bit-identical to the value Fill wrote at initialization time.
	kinds := []Init{
		{Kind: InitScaledNormal, Seed: 11, Scale: 0.05},
		{Kind: InitConstant, Seed: 11, Scale: 1.0},
		{Kind: InitUniform, Seed: 11, Scale: 0.1},
		{Kind: InitZero, Seed: 11},
	}
	for _, in := range kinds {
		buf := make([]float32, 1000)
		in.Fill(buf)
		for i, want := range buf {
			if got := in.Regenerate(i); got != want {
				t.Fatalf("kind %d: Regenerate(%d) = %v, Fill wrote %v", in.Kind, i, got, want)
			}
		}
	}
}

func TestRegenerateOrderIndependent(t *testing.T) {
	in := Init{Kind: InitScaledNormal, Seed: 42, Scale: 1}
	forward := make([]float32, 512)
	for i := range forward {
		forward[i] = in.Regenerate(i)
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := in.Regenerate(i); got != forward[i] {
			t.Fatalf("reverse-order Regenerate(%d) = %v, want %v", i, got, forward[i])
		}
	}
}

func TestConstantInitKinds(t *testing.T) {
	c := Init{Kind: InitConstant, Scale: 0.25}
	z := Init{Kind: InitZero}
	for i := 0; i < 100; i++ {
		if c.Regenerate(i) != 0.25 {
			t.Fatalf("InitConstant must regenerate 0.25 at every index")
		}
		if z.Regenerate(i) != 0 {
			t.Fatalf("InitZero must regenerate 0 at every index")
		}
	}
}

func TestScaledNormalStatistics(t *testing.T) {
	const scale = 0.07
	in := Init{Kind: InitScaledNormal, Seed: 9, Scale: scale}
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := float64(in.Regenerate(i))
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.002 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(std-scale)/scale > 0.05 {
		t.Errorf("std = %v, want ~%v", std, scale)
	}
}

func TestUniformInitRange(t *testing.T) {
	in := Init{Kind: InitUniform, Seed: 3, Scale: 0.5}
	for i := 0; i < 10000; i++ {
		v := in.Regenerate(i)
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("uniform init out of range: %v", v)
		}
	}
}

func TestLeCunScale(t *testing.T) {
	if got := LeCunScale(100); math.Abs(float64(got)-0.1) > 1e-6 {
		t.Errorf("LeCunScale(100) = %v, want 0.1", got)
	}
	if got := LeCunScale(0); got != 1 {
		t.Errorf("LeCunScale(0) = %v, want fallback 1", got)
	}
	if got := LeCunScale(-5); got != 1 {
		t.Errorf("LeCunScale(-5) = %v, want fallback 1", got)
	}
}

func TestHeScale(t *testing.T) {
	want := math.Sqrt(2.0 / 50)
	if got := HeScale(50); math.Abs(float64(got)-want) > 1e-6 {
		t.Errorf("HeScale(50) = %v, want %v", got, want)
	}
	if got := HeScale(0); got != 1 {
		t.Errorf("HeScale(0) = %v, want fallback 1", got)
	}
}

func TestTensorSeedDistinct(t *testing.T) {
	f := func(model uint64, a, b uint64) bool {
		if a == b {
			return true
		}
		return TensorSeed(model, a) != TensorSeed(model, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTensorSeedsGiveIndependentStreams(t *testing.T) {
	s1 := TensorSeed(7, 0)
	s2 := TensorSeed(7, 1)
	a := Init{Kind: InitScaledNormal, Seed: s1, Scale: 1}
	b := Init{Kind: InitScaledNormal, Seed: s2, Scale: 1}
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Regenerate(i) == b.Regenerate(i) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("tensor streams alias: %d/%d identical values", same, n)
	}
}

func TestRegeneratePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown InitKind")
		}
	}()
	Init{Kind: InitKind(250)}.Regenerate(0)
}
