// Package xorshift implements the deterministic pseudo-random number
// generators DropBack relies on to regenerate untracked weights.
//
// The central contract of the package is index-addressable regeneration:
// given a seed and a flat parameter index, the same initialization value can
// be recomputed at any time, in any order, bit-exactly. This is what lets
// DropBack avoid storing untracked weights — they are "forgotten" after
// every update and recomputed from (seed, index) at the next access.
//
// The paper (§2.1) uses Marsaglia's xorshift (Journal of Statistical
// Software, 2003) postprocessed to a scaled normal distribution, and notes
// that one regeneration costs six 32-bit integer operations plus one 32-bit
// float operation — about 1.5 pJ in a 45 nm process, 427× less energy than a
// single off-chip DRAM access. The op counts exposed here feed the energy
// model in internal/energy.
package xorshift

import "math"

// State32 is Marsaglia's 32-bit xorshift generator with the classic
// (13, 17, 5) triple. The zero value is invalid; use NewState32.
type State32 struct {
	s uint32
}

// NewState32 returns a 32-bit xorshift generator. A zero seed is mapped to a
// fixed non-zero constant because the all-zero state is a fixed point of the
// xorshift recurrence.
func NewState32(seed uint32) *State32 {
	if seed == 0 {
		seed = 0x9E3779B9 // golden-ratio constant; any non-zero value works
	}
	return &State32{s: seed}
}

// Next advances the generator and returns the next 32-bit value.
// It performs exactly six 32-bit integer operations (three shifts, three
// xors), matching the cost accounting in the paper.
func (g *State32) Next() uint32 {
	x := g.s
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	g.s = x
	return x
}

// State64 is the 64-bit variant with the (13, 7, 17) triple, used where a
// longer period is desirable (e.g. dataset synthesis).
type State64 struct {
	s uint64
}

// NewState64 returns a 64-bit xorshift generator, mapping a zero seed to a
// fixed non-zero constant.
func NewState64(seed uint64) *State64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &State64{s: seed}
}

// State returns the generator's raw internal state, for checkpointing.
func (g *State64) State() uint64 { return g.s }

// SetState restores a state previously returned by State. A zero state is
// mapped to the same non-zero constant NewState64 uses, keeping the
// generator valid no matter what a (possibly corrupt) checkpoint holds.
func (g *State64) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	g.s = s
}

// Next advances the generator and returns the next 64-bit value.
func (g *State64) Next() uint64 {
	x := g.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	g.s = x
	return x
}

// Uint32n returns a uniformly distributed integer in [0, n) without module
// bias for practical purposes (Lemire's multiply-shift reduction).
func (g *State64) Uint32n(n uint32) uint32 {
	if n == 0 {
		return 0
	}
	return uint32((uint64(uint32(g.Next())) * uint64(n)) >> 32)
}

// Float32 returns a uniform float32 in [0, 1) using the top 24 bits.
func (g *State64) Float32() float32 {
	return float32(g.Next()>>40) * (1.0 / (1 << 24))
}

// Float64 returns a uniform float64 in [0, 1) using the top 53 bits.
func (g *State64) Float64() float64 {
	return float64(g.Next()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal sample using the polar Box-Muller
// method. The spare value is discarded to keep the generator stateless with
// respect to call parity (important for reproducibility of interleaved use).
func (g *State64) NormFloat64() float64 {
	for {
		u := 2*g.Float64() - 1
		v := 2*g.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// mix64 is a SplitMix64-style finalizer used to decorrelate (seed, index)
// pairs before they enter the xorshift recurrence. Without mixing, nearby
// indices produce correlated first outputs, which would imprint structure on
// the regenerated weights.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// IndexedUint32 returns the raw 32-bit xorshift output addressed by
// (seed, index): it derives a per-index state and advances it once. Any
// (seed, index) pair always yields the same value regardless of access
// order — the property DropBack's regeneration depends on.
func IndexedUint32(seed uint64, index uint64) uint32 {
	h := mix64(seed ^ mix64(index))
	s := uint32(h)
	if s == 0 {
		s = 0x9E3779B9
	}
	// One xorshift32 step: the six integer ops the paper counts.
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	return s
}

// IndexedUniform returns a uniform float32 in [0, 1) addressed by
// (seed, index).
func IndexedUniform(seed uint64, index uint64) float32 {
	// One 32-bit float multiply: the single float op the paper counts.
	return float32(IndexedUint32(seed, index)>>8) * (1.0 / (1 << 24))
}

// IndexedNormal returns an approximately standard-normal float32 addressed
// by (seed, index).
//
// It sums four independent uniforms (Irwin–Hall, variance 4/12) and rescales
// — a branch-free transform that, unlike Box–Muller, needs no rejection loop
// and keeps the per-value cost a small fixed number of integer/float ops, in
// the spirit of the paper's "six integer ops + one float op" budget. The
// result is normal to well within the tolerance DNN initialization needs
// (|skew| = 0, |excess kurtosis| = -0.6/4 = -0.15).
func IndexedNormal(seed uint64, index uint64) float32 {
	base := mix64(seed ^ mix64(index))
	var sum float32
	for i := uint64(0); i < 4; i++ {
		s := uint32(base >> (8 * i))
		if s == 0 {
			s = 0x9E3779B9
		}
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		sum += float32(s>>8) * (1.0 / (1 << 24))
	}
	// sum has mean 2 and variance 4/12 = 1/3; normalize to N(0, 1).
	const invStd = 1.7320508 // sqrt(3)
	return (sum - 2) * invStd
}

// OpsPerRegeneration reports the integer and float operation counts of a
// single IndexedUint32-based regeneration as modeled by the paper: six
// 32-bit integer operations and one 32-bit floating-point operation.
func OpsPerRegeneration() (intOps, floatOps int) {
	return 6, 1
}
