package xorshift

// State128 is Marsaglia's four-word xorshift128 generator — the longest-
// period variant in the 2003 paper (period 2¹²⁸−1). The dataset generators
// use the 64-bit variant; this one exists for workloads that consume very
// long streams (e.g. large synthetic corpora) where xorshift64's period
// safety margin is thinner.
type State128 struct {
	x, y, z, w uint32
}

// NewState128 seeds the generator; an all-zero seed is remapped (the zero
// state is a fixed point).
func NewState128(seed uint64) *State128 {
	s := &State128{
		x: uint32(seed),
		y: uint32(seed >> 32),
		z: uint32(mix64(seed)),
		w: uint32(mix64(seed) >> 32),
	}
	if s.x|s.y|s.z|s.w == 0 {
		s.w = 0x9E3779B9
	}
	return s
}

// Next advances the generator and returns the next 32-bit value, using the
// (11, 8, 19) taps from Marsaglia's paper.
func (g *State128) Next() uint32 {
	t := g.x ^ (g.x << 11)
	g.x, g.y, g.z = g.y, g.z, g.w
	g.w = g.w ^ (g.w >> 19) ^ (t ^ (t >> 8))
	return g.w
}

// Float32 returns a uniform float32 in [0, 1).
func (g *State128) Float32() float32 {
	return float32(g.Next()>>8) * (1.0 / (1 << 24))
}
