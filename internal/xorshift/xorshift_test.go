package xorshift

import (
	"math"
	"testing"
	"testing/quick"
)

func TestState32NonZero(t *testing.T) {
	g := NewState32(0)
	if g.s == 0 {
		t.Fatal("zero seed must be remapped to a non-zero state")
	}
	for i := 0; i < 1000; i++ {
		if g.Next() == 0 {
			t.Fatal("xorshift32 must never emit state 0")
		}
	}
}

func TestState32KnownSequence(t *testing.T) {
	// Hand-computed first step of xorshift32(13,17,5) from seed 1:
	// x=1; x^=x<<13 -> 0x2001; x^=x>>17 -> 0x2001; x^=x<<5 -> 0x42021.
	g := NewState32(1)
	if got := g.Next(); got != 0x42021 {
		t.Fatalf("first output from seed 1 = %#x, want 0x42021", got)
	}
}

func TestState64NonZero(t *testing.T) {
	g := NewState64(0)
	if g.s == 0 {
		t.Fatal("zero seed must be remapped to a non-zero state")
	}
}

func TestState64Period(t *testing.T) {
	// The state must never return to the start within a modest horizon.
	g := NewState64(12345)
	start := g.s
	for i := 0; i < 100000; i++ {
		g.Next()
		if g.s == start {
			t.Fatalf("state returned to start after %d steps", i+1)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	g := NewState64(7)
	for i := 0; i < 10000; i++ {
		f := g.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := NewState64(7)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUint32nRange(t *testing.T) {
	g := NewState64(99)
	for _, n := range []uint32{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := g.Uint32n(n)
			if v >= n {
				t.Fatalf("Uint32n(%d) = %d out of range", n, v)
			}
		}
	}
	if g.Uint32n(0) != 0 {
		t.Fatal("Uint32n(0) must return 0")
	}
}

func TestUint32nCoversAllValues(t *testing.T) {
	g := NewState64(3)
	seen := make(map[uint32]bool)
	for i := 0; i < 10000; i++ {
		seen[g.Uint32n(8)] = true
	}
	for v := uint32(0); v < 8; v++ {
		if !seen[v] {
			t.Fatalf("value %d never produced by Uint32n(8)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	g := NewState64(42)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestIndexedUint32Deterministic(t *testing.T) {
	// Order independence: accessing indices in any order yields the same
	// values. This is the property DropBack regeneration depends on.
	f := func(seed, index uint64) bool {
		a := IndexedUint32(seed, index)
		// interleave unrelated accesses
		_ = IndexedUint32(seed+1, index)
		_ = IndexedUint32(seed, index+1)
		b := IndexedUint32(seed, index)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedUint32DistinctAcrossIndices(t *testing.T) {
	seen := make(map[uint32]int)
	const n = 50000
	for i := uint64(0); i < n; i++ {
		seen[IndexedUint32(1, i)]++
	}
	// Collisions should be rare (birthday bound ~ n^2/2^33 ≈ 0.3 expected).
	collisions := n - len(seen)
	if collisions > 5 {
		t.Fatalf("too many collisions across indices: %d", collisions)
	}
}

func TestIndexedNormalMoments(t *testing.T) {
	const n = 200000
	var sum, sumSq, sumCube float64
	for i := uint64(0); i < n; i++ {
		x := float64(IndexedNormal(5, i))
		sum += x
		sumSq += x * x
		sumCube += x * x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := (sumCube/n - 3*mean*variance - mean*mean*mean) / math.Pow(variance, 1.5)
	if math.Abs(mean) > 0.02 {
		t.Errorf("IndexedNormal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("IndexedNormal variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("IndexedNormal skew = %v, want ~0", skew)
	}
}

func TestIndexedNormalDeterministic(t *testing.T) {
	f := func(seed, index uint64) bool {
		return IndexedNormal(seed, index) == IndexedNormal(seed, index)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedUniformRange(t *testing.T) {
	f := func(seed, index uint64) bool {
		u := IndexedUniform(seed, index)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedStreamsDecorrelated(t *testing.T) {
	// Adjacent seeds must not produce correlated streams.
	const n = 20000
	var dot, nrmA, nrmB float64
	for i := uint64(0); i < n; i++ {
		a := float64(IndexedNormal(100, i))
		b := float64(IndexedNormal(101, i))
		dot += a * b
		nrmA += a * a
		nrmB += b * b
	}
	corr := dot / math.Sqrt(nrmA*nrmB)
	if math.Abs(corr) > 0.03 {
		t.Fatalf("adjacent-seed streams correlated: r = %v", corr)
	}
}

func TestOpsPerRegeneration(t *testing.T) {
	intOps, floatOps := OpsPerRegeneration()
	if intOps != 6 || floatOps != 1 {
		t.Fatalf("ops = (%d, %d), want (6, 1) per the paper", intOps, floatOps)
	}
}
