package xorshift

import "math"

// InitKind selects the regeneration rule for a parameter tensor. DropBack
// must be able to regenerate the *initialization-time* value of any weight;
// different layer types initialize differently, so the regenerator records
// which rule produced each tensor.
type InitKind uint8

const (
	// InitScaledNormal draws from N(0, scale) via the indexed xorshift
	// normal. Used for Linear and Conv weights (LeCun 1998 scaling).
	InitScaledNormal InitKind = iota
	// InitConstant regenerates a fixed constant (e.g. BatchNorm gamma = 1,
	// beta = 0, PReLU slope = 0.25). The paper notes constant-initialized
	// layers are pruned "out of the box" because xorshift is not even
	// needed: regeneration is just the constant.
	InitConstant
	// InitUniform draws from U(-scale, scale) via the indexed xorshift
	// uniform; provided for completeness (Glorot-uniform style layers).
	InitUniform
	// InitZero is InitConstant with value 0 (biases).
	InitZero
)

// Init describes how one parameter tensor was initialized, carrying
// everything needed to regenerate any element from its flat index.
type Init struct {
	Kind InitKind
	// Seed is the global model seed combined (by the caller) with a stable
	// per-tensor identifier, so tensors do not alias each other's streams.
	Seed uint64
	// Scale is the standard deviation (InitScaledNormal), the half-range
	// (InitUniform), or the constant value (InitConstant).
	Scale float32
}

// Regenerate recomputes the initialization value of the element at flat
// index i within the tensor. It is pure: same Init and index always yield
// the same value.
func (in Init) Regenerate(i int) float32 {
	switch in.Kind {
	case InitScaledNormal:
		return in.Scale * IndexedNormal(in.Seed, uint64(i))
	case InitConstant:
		return in.Scale
	case InitUniform:
		return in.Scale * (2*IndexedUniform(in.Seed, uint64(i)) - 1)
	case InitZero:
		return 0
	default:
		panic("xorshift: unknown InitKind")
	}
}

// Fill writes the initialization values for indices [0, len(dst)) into dst.
// This is how tensors are initialized in the first place, guaranteeing that
// what Regenerate returns later is exactly what training started from.
func (in Init) Fill(dst []float32) {
	for i := range dst {
		dst[i] = in.Regenerate(i)
	}
}

// LeCunScale returns the LeCun (1998) initialization standard deviation
// 1/sqrt(fanIn) used by the paper for weight tensors.
func LeCunScale(fanIn int) float32 {
	if fanIn <= 0 {
		return 1
	}
	return float32(1 / math.Sqrt(float64(fanIn)))
}

// HeScale returns the He initialization standard deviation sqrt(2/fanIn),
// appropriate for ReLU networks (used by the conv architectures).
func HeScale(fanIn int) float32 {
	if fanIn <= 0 {
		return 1
	}
	return float32(math.Sqrt(2 / float64(fanIn)))
}

// TensorSeed derives the per-tensor seed from the global model seed and a
// stable tensor identifier. Mixing prevents stream aliasing between tensors
// that share the same flat indices.
func TensorSeed(modelSeed uint64, tensorID uint64) uint64 {
	return mix64(modelSeed ^ mix64(tensorID+0x5851F42D4C957F2D))
}
