package dist

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes one node's membership in a training cluster.
type Config struct {
	// Rank is this node's index in [0, len(Peers)).
	Rank int
	// Peers holds every rank's dialable address, indexed by rank; the entry
	// at Rank describes this node and is never dialed. len(Peers) is the
	// world size.
	Peers []string
	// Listen is the local bind address for incoming peers ("" lets the
	// kernel choose on 127.0.0.1; production passes an explicit host:port
	// that matches Peers[Rank]). Ignored when Listener is set.
	Listen string
	// Listener, if non-nil, is a pre-bound listener to accept peers on —
	// the test seam that lets in-process nodes bind 127.0.0.1:0 first and
	// share the resolved addresses before any node starts connecting.
	Listener net.Listener
	// ConnectTimeout bounds the whole mesh build, including dial retries
	// while lower-rank peers are still starting (10s if zero).
	ConnectTimeout time.Duration
	// StepTimeout bounds each step's exchange with every peer; a stalled
	// peer trips it instead of hanging the fold (30s if zero).
	StepTimeout time.Duration
	// MaxFrame bounds incoming payload sizes (128 MiB if zero). The dense
	// pre-freeze exchange needs batch × paramTotal × 4 bytes per frame.
	MaxFrame int
	// WrapConn, if non-nil, wraps each established peer connection after
	// the handshake — the fault-injection seam internal/faults' connection
	// injectors plug into. Production leaves it nil.
	WrapConn func(rank int, c net.Conn) net.Conn
}

// Validate reports the first configuration problem.
func (c *Config) Validate() error {
	world := len(c.Peers)
	if world < 2 {
		return fmt.Errorf("dist: need at least 2 peers, got %d", world)
	}
	if c.Rank < 0 || c.Rank >= world {
		return fmt.Errorf("dist: rank %d outside the %d-node world", c.Rank, world)
	}
	for r, addr := range c.Peers {
		if r != c.Rank && addr == "" {
			return fmt.Errorf("dist: peer %d has no address", r)
		}
	}
	if c.ConnectTimeout < 0 || c.StepTimeout < 0 {
		return fmt.Errorf("dist: timeouts must be non-negative")
	}
	if c.MaxFrame < 0 {
		return fmt.Errorf("dist: MaxFrame must be non-negative")
	}
	return nil
}

const (
	defaultConnectTimeout = 10 * time.Second
	defaultStepTimeout    = 30 * time.Second
	defaultMaxFrame       = 128 << 20
	// handshakeMaxFrame bounds frames read during the handshake, where only
	// hello and abort payloads are legal.
	handshakeMaxFrame = 4096
	// dialRetryEvery paces dial retries while a lower-rank peer's listener
	// is still coming up.
	dialRetryEvery = 25 * time.Millisecond
)

// peerLink is one established connection to a peer, with its byte counters.
type peerLink struct {
	conn    net.Conn // post-WrapConn view the exchange uses
	counter *countingConn
}

// countingConn counts bytes crossing the real connection. It sits innermost
// (directly on the net.Conn) so the counters report true bytes-on-wire even
// when a fault injector is wrapped outside it.
type countingConn struct {
	net.Conn
	sent atomic.Int64
	recv atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// Cluster is one node's view of the full training mesh: an open connection
// to every other rank, plus the per-step exchange that broadcasts this
// node's shard frame and collects every peer's. It is single-goroutine like
// the trainer that owns it (Exchange runs internal goroutines but does not
// return until they finish).
type Cluster struct {
	cfg   Config
	rank  int
	world int
	peers []*peerLink // indexed by rank; nil at own rank
	ln    net.Listener

	frame    []byte   // scratch for the broadcast frame
	recvBufs [][]byte // per-peer receive buffers, reused across steps
	out      [][]byte // per-peer payload views returned by Exchange
	errs     []error  // per-goroutine error slots, reused across steps

	closed bool
}

// Connect builds the full mesh: rank r accepts one connection from every
// higher rank and dials every lower rank (retrying while their listeners
// come up), then handshakes each link — both sides send their hello and
// verify the peer's. Any disagreement on a bit-identity field aborts the
// connection with a descriptive reason. On success every pair of nodes has
// exactly one verified connection.
func Connect(cfg Config, hs Handshake) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ConnectTimeout == 0 {
		cfg.ConnectTimeout = defaultConnectTimeout
	}
	if cfg.StepTimeout == 0 {
		cfg.StepTimeout = defaultStepTimeout
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = defaultMaxFrame
	}
	world := len(cfg.Peers)
	hs.Version = wireVersion
	hs.Rank = uint32(cfg.Rank)
	hs.World = uint32(world)

	c := &Cluster{
		cfg:      cfg,
		rank:     cfg.Rank,
		world:    world,
		peers:    make([]*peerLink, world),
		recvBufs: make([][]byte, world),
		out:      make([][]byte, world),
		errs:     make([]error, 2*world),
	}
	deadline := time.Now().Add(cfg.ConnectTimeout)

	incoming := world - 1 - cfg.Rank
	c.ln = cfg.Listener
	if c.ln == nil && (incoming > 0 || cfg.Listen != "") {
		addr := cfg.Listen
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("dist: rank %d listen %s: %w", cfg.Rank, addr, err)
		}
		c.ln = ln
	}

	// Accept from higher ranks concurrently with dialing lower ranks, so
	// mesh build time is one round trip, not rank-serialized.
	acceptErr := make(chan error, 1)
	if incoming > 0 {
		if d, ok := c.ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(deadline)
		}
		go func() { acceptErr <- c.acceptPeers(incoming, deadline, hs) }()
	} else {
		acceptErr <- nil
	}

	dialErr := c.dialPeers(deadline, hs)
	aerr := <-acceptErr
	if d, ok := c.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	if err := errors.Join(dialErr, aerr); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// acceptPeers collects and handshakes n incoming connections, each of which
// must introduce itself as a distinct rank above ours.
func (c *Cluster) acceptPeers(n int, deadline time.Time, hs Handshake) error {
	for i := 0; i < n; i++ {
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: rank %d accepting peer %d of %d: %w", c.rank, i+1, n, err)
		}
		link, rank, err := c.handshake(conn, -1, deadline, hs)
		if err != nil {
			conn.Close()
			return err
		}
		if c.peers[rank] != nil {
			conn.Close()
			return fmt.Errorf("%w: rank %d connected twice", ErrHandshakeMismatch, rank)
		}
		c.peers[rank] = link
	}
	return nil
}

// dialPeers connects to every lower rank, retrying while their listeners
// are still coming up.
func (c *Cluster) dialPeers(deadline time.Time, hs Handshake) error {
	for r := 0; r < c.rank; r++ {
		var conn net.Conn
		for {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return fmt.Errorf("dist: rank %d dialing peer %d at %s: connect timeout", c.rank, r, c.cfg.Peers[r])
			}
			var err error
			conn, err = net.DialTimeout("tcp", c.cfg.Peers[r], remaining)
			if err == nil {
				break
			}
			time.Sleep(dialRetryEvery)
		}
		link, _, err := c.handshake(conn, r, deadline, hs)
		if err != nil {
			conn.Close()
			return err
		}
		c.peers[r] = link
	}
	return nil
}

// handshake sends our hello and verifies the peer's on a fresh connection.
// expectRank is the rank we dialed (-1 on accepted connections, where the
// peer introduces itself and must merely be a higher rank). On a verified
// mismatch an abort frame with the reason is sent before the error returns,
// so the far side logs why it was refused instead of a bare reset.
func (c *Cluster) handshake(conn net.Conn, expectRank int, deadline time.Time, hs Handshake) (*peerLink, int, error) {
	cc := &countingConn{Conn: conn}
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	if err := WriteFrame(cc, AppendHello(nil, hs)); err != nil {
		return nil, 0, fmt.Errorf("dist: rank %d sending hello: %w", c.rank, err)
	}
	var buf []byte
	payload, err := ReadFrame(cc, &buf, handshakeMaxFrame)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: rank %d reading hello: %w", c.rank, err)
	}
	if m, merr := PayloadMagic(payload); merr == nil && m == magicAbort {
		rank, reason, _ := DecodeAbort(payload)
		return nil, 0, fmt.Errorf("%w: rank %d: %s", ErrPeerAborted, rank, reason)
	}
	ph, err := DecodeHello(payload)
	if err != nil {
		return nil, 0, err
	}
	if err := verifyHello(hs, ph, expectRank); err != nil {
		// Tell the peer why before hanging up; best-effort.
		WriteFrame(cc, AppendAbort(nil, hs.Rank, err.Error()))
		return nil, 0, err
	}
	link := &peerLink{conn: cc, counter: cc}
	if c.cfg.WrapConn != nil {
		link.conn = c.cfg.WrapConn(int(ph.Rank), cc)
	}
	return link, int(ph.Rank), nil
}

// verifyHello checks every bit-identity field of a peer's hello against our
// own handshake.
func verifyHello(mine, theirs Handshake, expectRank int) error {
	switch {
	case theirs.Version != mine.Version:
		return fmt.Errorf("%w: wire version %d here, peer says %d", ErrHandshakeMismatch, mine.Version, theirs.Version)
	case theirs.World != mine.World:
		return fmt.Errorf("%w: world size %d here, peer says %d", ErrHandshakeMismatch, mine.World, theirs.World)
	case expectRank >= 0 && theirs.Rank != uint32(expectRank):
		return fmt.Errorf("%w: dialed rank %d, peer introduced itself as %d", ErrHandshakeMismatch, expectRank, theirs.Rank)
	case expectRank < 0 && (theirs.Rank <= mine.Rank || theirs.Rank >= mine.World):
		return fmt.Errorf("%w: accepted peer claims rank %d, expected one in (%d, %d)", ErrHandshakeMismatch, theirs.Rank, mine.Rank, mine.World)
	case theirs.Seed != mine.Seed:
		return fmt.Errorf("%w: seed %d here, peer %d says %d", ErrHandshakeMismatch, mine.Seed, theirs.Rank, theirs.Seed)
	case theirs.Method != mine.Method:
		return fmt.Errorf("%w: method %d here, peer %d says %d", ErrHandshakeMismatch, mine.Method, theirs.Rank, theirs.Method)
	case theirs.Budget != mine.Budget:
		return fmt.Errorf("%w: budget %d here, peer %d says %d", ErrHandshakeMismatch, mine.Budget, theirs.Rank, theirs.Budget)
	case theirs.FreezeAfter != mine.FreezeAfter:
		return fmt.Errorf("%w: freeze epoch %d here, peer %d says %d", ErrHandshakeMismatch, mine.FreezeAfter, theirs.Rank, theirs.FreezeAfter)
	case theirs.Batch != mine.Batch:
		return fmt.Errorf("%w: batch size %d here, peer %d says %d", ErrHandshakeMismatch, mine.Batch, theirs.Rank, theirs.Batch)
	case theirs.ParamTotal != mine.ParamTotal:
		return fmt.Errorf("%w: %d parameters here, peer %d says %d", ErrHandshakeMismatch, mine.ParamTotal, theirs.Rank, theirs.ParamTotal)
	case theirs.ModelHash != mine.ModelHash:
		return fmt.Errorf("%w: model hash %016x here, peer %d says %016x", ErrHandshakeMismatch, mine.ModelHash, theirs.Rank, theirs.ModelHash)
	case theirs.StartStep != mine.StartStep:
		return fmt.Errorf("%w: resuming at step %d here, peer %d at step %d — nodes must resume from the same checkpoint", ErrHandshakeMismatch, mine.StartStep, theirs.Rank, theirs.StartStep)
	}
	return nil
}

// Rank returns this node's rank; World the cluster size.
func (c *Cluster) Rank() int { return c.rank }

// World returns the number of nodes in the cluster.
func (c *Cluster) World() int { return c.world }

// Exchange broadcasts this node's step payload to every peer and collects
// one step payload from each, returned indexed by rank (nil at our own).
// Writes and reads run concurrently per peer under StepTimeout deadlines, so
// symmetric large frames cannot deadlock on full socket buffers and a
// stalled peer trips the deadline instead of hanging the fold. Received
// frames are validated here for freshness (step counter) and provenance
// (claimed rank matches the connection); layout validation beyond that is
// the caller's. Returned payloads alias internal buffers valid until the
// next Exchange.
func (c *Cluster) Exchange(step uint64, payload []byte) ([][]byte, error) {
	c.frame = AppendFrame(c.frame[:0], payload)
	deadline := time.Now().Add(c.cfg.StepTimeout)
	for i := range c.errs {
		c.errs[i] = nil
	}
	for i := range c.out {
		c.out[i] = nil
	}
	var wg sync.WaitGroup
	for r, p := range c.peers {
		if p == nil {
			continue
		}
		wg.Add(2)
		go func(r int, p *peerLink) {
			defer wg.Done()
			p.conn.SetWriteDeadline(deadline)
			if _, err := p.conn.Write(c.frame); err != nil {
				c.errs[2*r] = fmt.Errorf("dist: step %d: sending to peer %d: %w", step, r, err)
			}
		}(r, p)
		go func(r int, p *peerLink) {
			defer wg.Done()
			p.conn.SetReadDeadline(deadline)
			pl, err := ReadFrame(p.conn, &c.recvBufs[r], c.cfg.MaxFrame)
			if err != nil {
				c.errs[2*r+1] = fmt.Errorf("dist: step %d: receiving from peer %d: %w", step, r, err)
				return
			}
			magic, err := PayloadMagic(pl)
			if err != nil {
				c.errs[2*r+1] = fmt.Errorf("dist: step %d: peer %d: %w", step, r, err)
				return
			}
			switch magic {
			case magicAbort:
				rank, reason, _ := DecodeAbort(pl)
				c.errs[2*r+1] = fmt.Errorf("%w: rank %d: %s", ErrPeerAborted, rank, reason)
			case magicStep:
				hdr, err := DecodeStepHeader(pl)
				switch {
				case err != nil:
					c.errs[2*r+1] = fmt.Errorf("dist: step %d: peer %d: %w", step, r, err)
				case hdr.Step != step:
					c.errs[2*r+1] = fmt.Errorf("%w: peer %d sent step %d during step %d", ErrStaleStep, r, hdr.Step, step)
				case hdr.Rank != uint32(r):
					c.errs[2*r+1] = fmt.Errorf("%w: peer %d's frame claims rank %d", ErrShardMismatch, r, hdr.Rank)
				default:
					c.out[r] = pl
				}
			default:
				c.errs[2*r+1] = fmt.Errorf("dist: step %d: peer %d sent an unexpected %08x payload mid-training", step, r, magic)
			}
		}(r, p)
	}
	wg.Wait()
	if err := errors.Join(c.errs...); err != nil {
		return nil, err
	}
	return c.out, nil
}

// Abort tells every peer why this node is leaving, best-effort with a short
// deadline, so their next read fails with ErrPeerAborted and the reason
// instead of a bare connection reset. The trainer calls it before
// surfacing a step error; Close still must be called.
func (c *Cluster) Abort(reason string) {
	frame := AppendFrame(nil, AppendAbort(nil, uint32(c.rank), reason))
	deadline := time.Now().Add(time.Second)
	for _, p := range c.peers {
		if p == nil {
			continue
		}
		p.conn.SetWriteDeadline(deadline)
		p.conn.Write(frame)
	}
}

// BytesSent returns the total bytes written to all peers (handshake frames
// included); BytesReceived the mirror. Counters sit directly on the socket,
// so per-step deltas equal true bytes-on-wire — what the O(k) test asserts.
func (c *Cluster) BytesSent() int64 {
	var n int64
	for _, p := range c.peers {
		if p != nil {
			n += p.counter.sent.Load()
		}
	}
	return n
}

// BytesReceived returns the total bytes read from all peers.
func (c *Cluster) BytesReceived() int64 {
	var n int64
	for _, p := range c.peers {
		if p != nil {
			n += p.counter.recv.Load()
		}
	}
	return n
}

// PeerBytes returns one peer's sent/received byte counters (zero for our own
// rank).
func (c *Cluster) PeerBytes(rank int) (sent, received int64) {
	if rank < 0 || rank >= c.world || c.peers[rank] == nil {
		return 0, 0
	}
	return c.peers[rank].counter.sent.Load(), c.peers[rank].counter.recv.Load()
}

// Close shuts every peer connection and the listener. Idempotent.
func (c *Cluster) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var errs []error
	for _, p := range c.peers {
		if p != nil {
			if err := p.conn.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if c.ln != nil {
		if err := c.ln.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
