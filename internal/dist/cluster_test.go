package dist

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dropback/internal/faults"
)

// meshConfigs pre-binds one loopback listener per rank and returns ready
// Configs sharing the resolved address list — the in-process analogue of N
// processes whose addresses are known up front.
func meshConfigs(t *testing.T, world int) []Config {
	t.Helper()
	addrs := make([]string, world)
	lns := make([]net.Listener, world)
	for r := 0; r < world; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	cfgs := make([]Config, world)
	for r := 0; r < world; r++ {
		cfgs[r] = Config{
			Rank:           r,
			Peers:          append([]string(nil), addrs...),
			Listener:       lns[r],
			ConnectTimeout: 5 * time.Second,
			StepTimeout:    5 * time.Second,
		}
	}
	return cfgs
}

// connectMesh runs Connect for every rank concurrently (real clusters start
// their nodes independently) and returns the clusters, failing the test on
// any error.
func connectMesh(t *testing.T, cfgs []Config, hs Handshake) []*Cluster {
	t.Helper()
	clusters, errs := connectMeshErr(cfgs, func(int) Handshake { return hs })
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range clusters {
			if c != nil {
				c.Close()
			}
		}
	})
	return clusters
}

// connectMeshErr is the error-collecting variant for mismatch tests: each
// rank's handshake comes from hsFor, and per-rank errors are returned
// instead of failing.
func connectMeshErr(cfgs []Config, hsFor func(rank int) Handshake) ([]*Cluster, []error) {
	world := len(cfgs)
	clusters := make([]*Cluster, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			clusters[r], errs[r] = Connect(cfgs[r], hsFor(r))
		}(r)
	}
	wg.Wait()
	return clusters, errs
}

// stepPayloadFor builds a minimal valid step payload for rank r at the given
// step: one sample, two values, contents derived from the rank so receivers
// can verify provenance.
func stepPayloadFor(rank int, step uint64) []byte {
	return buildStepPayload(
		StepHeader{Rank: uint32(rank), Step: step, Lo: uint32(rank), Hi: uint32(rank) + 1, Active: 2},
		[]float64{float64(rank)}, []uint8{1},
		[][]float32{{float32(rank), float32(rank) * 2}}, nil,
	)
}

// TestClusterExchangeThreeNodes builds a 3-node mesh and runs several
// exchange rounds: every node must receive every other node's exact payload,
// indexed by rank, and the socket-level byte counters must equal the
// analytical frame sizes.
func TestClusterExchangeThreeNodes(t *testing.T) {
	cfgs := meshConfigs(t, 3)
	clusters := connectMesh(t, cfgs, Handshake{Seed: 5, Budget: 100})

	for step := uint64(0); step < 3; step++ {
		var wg sync.WaitGroup
		got := make([][][]byte, 3)
		errs := make([]error, 3)
		sentBefore := make([]int64, 3)
		for r, c := range clusters {
			sentBefore[r] = c.BytesSent()
			wg.Add(1)
			go func(r int, c *Cluster) {
				defer wg.Done()
				replies, err := c.Exchange(step, stepPayloadFor(r, step))
				if err != nil {
					errs[r] = err
					return
				}
				// Copy: replies alias buffers reused next Exchange.
				got[r] = make([][]byte, len(replies))
				for i, p := range replies {
					got[r][i] = append([]byte(nil), p...)
				}
			}(r, c)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("step %d rank %d: %v", step, r, err)
			}
		}
		for r := 0; r < 3; r++ {
			for s := 0; s < 3; s++ {
				if s == r {
					if got[r][s] != nil {
						t.Fatalf("rank %d received a payload at its own slot", r)
					}
					continue
				}
				want := stepPayloadFor(s, step)
				if string(got[r][s]) != string(want) {
					t.Fatalf("step %d: rank %d's copy of rank %d's payload differs", step, r, s)
				}
			}
			// Each node sent its frame to 2 peers: the counters sit on the
			// socket, so the delta is exactly 2 framed payloads.
			wantSent := int64(2 * (len(stepPayloadFor(r, step)) + frameOverhead))
			if d := clusters[r].BytesSent() - sentBefore[r]; d != wantSent {
				t.Fatalf("step %d: rank %d sent %d bytes, want %d", step, r, d, wantSent)
			}
		}
	}

	// Per-peer counters: rank 0's link to rank 1 carried 3 steps' frames
	// each way plus one hello frame each way from the handshake.
	frameLen := int64(len(stepPayloadFor(0, 0)) + frameOverhead)
	helloFrame := int64(helloLen + frameOverhead)
	sent01, recv01 := clusters[0].PeerBytes(1)
	if sent01 != 3*frameLen+helloFrame {
		t.Fatalf("peer 0→1 sent %d bytes, want %d", sent01, 3*frameLen+helloFrame)
	}
	if recv01 != 3*frameLen+helloFrame {
		t.Fatalf("peer 0←1 received %d bytes, want %d", recv01, 3*frameLen+helloFrame)
	}
	if s, r := clusters[0].PeerBytes(0); s != 0 || r != 0 {
		t.Fatal("own-rank peer counters must be zero")
	}
}

// TestClusterHandshakeMismatch gives rank 1 a different value for each
// bit-identity field in turn: the mesh must refuse to form, the mismatching
// pair must both see a descriptive error (ErrHandshakeMismatch on the side
// that detected it, ErrPeerAborted with the reason on the side that was
// refused), and no cluster may come up half-connected.
func TestClusterHandshakeMismatch(t *testing.T) {
	base := Handshake{Seed: 7, Method: 1, Budget: 500, FreezeAfter: 2, Batch: 8, ParamTotal: 100, ModelHash: 0xAA, StartStep: 0}
	mutations := map[string]func(*Handshake){
		"seed":    func(h *Handshake) { h.Seed++ },
		"method":  func(h *Handshake) { h.Method++ },
		"budget":  func(h *Handshake) { h.Budget++ },
		"freeze":  func(h *Handshake) { h.FreezeAfter++ },
		"batch":   func(h *Handshake) { h.Batch++ },
		"params":  func(h *Handshake) { h.ParamTotal++ },
		"model":   func(h *Handshake) { h.ModelHash++ },
		"restart": func(h *Handshake) { h.StartStep++ },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cfgs := meshConfigs(t, 2)
			clusters, errs := connectMeshErr(cfgs, func(r int) Handshake {
				h := base
				if r == 1 {
					mutate(&h)
				}
				return h
			})
			for _, c := range clusters {
				if c != nil {
					t.Fatal("mismatched mesh connected")
				}
			}
			for r, err := range errs {
				if err == nil {
					t.Fatalf("rank %d connected despite %s mismatch", r, name)
				}
				if !errors.Is(err, ErrHandshakeMismatch) && !errors.Is(err, ErrPeerAborted) {
					t.Fatalf("rank %d: %v is neither ErrHandshakeMismatch nor ErrPeerAborted", r, err)
				}
			}
		})
	}
}

// TestClusterStaleStep desynchronizes the step counters: both nodes must
// fail the exchange, at least one classifying it as ErrStaleStep.
func TestClusterStaleStep(t *testing.T) {
	cfgs := meshConfigs(t, 2)
	clusters := connectMesh(t, cfgs, Handshake{Seed: 1})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r, c := range clusters {
		wg.Add(1)
		go func(r int, c *Cluster) {
			defer wg.Done()
			step := uint64(10 + r) // rank 0 at step 10, rank 1 at step 11
			_, errs[r] = c.Exchange(step, stepPayloadFor(r, step))
		}(r, c)
	}
	wg.Wait()
	if !errors.Is(errs[0], ErrStaleStep) && !errors.Is(errs[1], ErrStaleStep) {
		t.Fatalf("neither node saw ErrStaleStep: %v / %v", errs[0], errs[1])
	}
}

// TestClusterAbortPropagatesReason has rank 0 abort with a reason; rank 1's
// next exchange must fail with ErrPeerAborted carrying that reason verbatim.
func TestClusterAbortPropagatesReason(t *testing.T) {
	cfgs := meshConfigs(t, 2)
	clusters := connectMesh(t, cfgs, Handshake{Seed: 2})
	const reason = "gradient fold diverged on node 0"
	clusters[0].Abort(reason)
	_, err := clusters[1].Exchange(0, stepPayloadFor(1, 0))
	if !errors.Is(err, ErrPeerAborted) {
		t.Fatalf("got %v, want ErrPeerAborted", err)
	}
	if !strings.Contains(err.Error(), reason) {
		t.Fatalf("abort reason %q lost: %v", reason, err)
	}
}

// TestClusterPeerDisconnectMidExchange severs rank 1's connection after a
// few step bytes (the handshake is exempt: WrapConn wraps post-handshake).
// Both nodes must surface a descriptive per-peer error — ErrInjected through
// the cut side, a truncated/reset read on the other — rather than hang or
// misfold.
func TestClusterPeerDisconnectMidExchange(t *testing.T) {
	cfgs := meshConfigs(t, 2)
	cfgs[1].WrapConn = func(rank int, c net.Conn) net.Conn {
		return &faults.CutConn{Conn: c, N: 10} // dies 10 bytes into step traffic
	}
	clusters := connectMesh(t, cfgs, Handshake{Seed: 3})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r, c := range clusters {
		wg.Add(1)
		go func(r int, c *Cluster) {
			defer wg.Done()
			_, errs[r] = c.Exchange(0, stepPayloadFor(r, 0))
		}(r, c)
	}
	wg.Wait()
	if !errors.Is(errs[1], faults.ErrInjected) {
		t.Fatalf("cut side: got %v, want ErrInjected", errs[1])
	}
	if errs[0] == nil {
		t.Fatal("healthy side did not notice the dead peer")
	}
	if !strings.Contains(errs[0].Error(), "peer 1") {
		t.Fatalf("healthy side's error does not name the peer: %v", errs[0])
	}
}

// TestClusterStalledPeerTripsDeadline wraps rank 1's link in a StallConn
// that blocks all step writes: rank 0's read must trip StepTimeout instead
// of hanging the fold. The stalled node's exchange stays blocked until the
// release channel opens at teardown — exactly the recovery path a real
// operator has (kill the stalled process).
func TestClusterStalledPeerTripsDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cfgs := meshConfigs(t, 2)
	cfgs[0].StepTimeout = 250 * time.Millisecond
	cfgs[1].StepTimeout = 10 * time.Second
	stall := &faults.StallConn{N: 0, Release: release}
	cfgs[1].WrapConn = func(rank int, c net.Conn) net.Conn {
		stall.Conn = c
		return stall
	}
	clusters := connectMesh(t, cfgs, Handshake{Seed: 4})

	done := make(chan error, 1)
	go func() {
		_, err := clusters[1].Exchange(0, stepPayloadFor(1, 0))
		done <- err
	}()

	start := time.Now()
	_, err := clusters[0].Exchange(0, stepPayloadFor(0, 0))
	if err == nil {
		t.Fatal("exchange with a stalled peer succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("got %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to trip", elapsed)
	}
	if !stall.Stalled() {
		t.Fatal("stall injector never engaged")
	}
	go func() { <-done }() // drain the stalled node once the deferred close releases it
}

// TestClusterConfigValidate pins the rejection matrix.
func TestClusterConfigValidate(t *testing.T) {
	good := Config{Rank: 0, Peers: []string{"a:1", "b:2"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Rank: 0, Peers: []string{"a:1"}},         // world of one
		{Rank: 2, Peers: []string{"a:1", "b:2"}},  // rank out of range
		{Rank: -1, Peers: []string{"a:1", "b:2"}}, // negative rank
		{Rank: 0, Peers: []string{"a:1", ""}},     // missing peer address
		{Rank: 0, Peers: []string{"a:1", "b:2"}, ConnectTimeout: -1},
		{Rank: 0, Peers: []string{"a:1", "b:2"}, MaxFrame: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// TestClusterConnectTimeout proves a missing peer fails the mesh build
// within ConnectTimeout instead of hanging forever.
func TestClusterConnectTimeout(t *testing.T) {
	// Rank 1 dials rank 0 at an address nobody listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	cfg := Config{
		Rank:           1,
		Peers:          []string{dead, "127.0.0.1:0"},
		ConnectTimeout: 300 * time.Millisecond,
	}
	start := time.Now()
	if _, err := Connect(cfg, Handshake{}); err == nil {
		t.Fatal("connected to a dead peer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("connect failure took %v", elapsed)
	}
}

// TestClusterCloseIdempotent double-closes every node.
func TestClusterCloseIdempotent(t *testing.T) {
	cfgs := meshConfigs(t, 2)
	clusters := connectMesh(t, cfgs, Handshake{Seed: 6})
	for _, c := range clusters {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
