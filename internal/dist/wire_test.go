package dist

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"dropback/internal/faults"
)

// buildStepPayload assembles a step payload the way the executor does: the
// fixed header, then every sample's metadata, then every sample's values.
func buildStepPayload(h StepHeader, losses []float64, correct []uint8, rows [][]float32, idx []int32) []byte {
	p := AppendStepHeader(nil, h)
	for i := range losses {
		p = AppendSample(p, losses[i], correct[i])
	}
	for _, row := range rows {
		p = AppendSampleValues(p, row, idx)
	}
	return p
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	frame := AppendFrame(nil, payload)
	if len(frame) != len(payload)+frameOverhead {
		t.Fatalf("frame is %d bytes, want payload %d + overhead %d", len(frame), len(payload), frameOverhead)
	}
	var buf []byte
	got, err := ReadFrame(bytes.NewReader(frame), &buf, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q round-tripped to %q", payload, got)
	}
	// A clean end of stream before any byte is io.EOF — the normal shutdown
	// signal, not a frame error.
	if _, err := ReadFrame(bytes.NewReader(nil), &buf, 1<<16); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestFrameRoundTripEmptyPayload(t *testing.T) {
	frame := AppendFrame(nil, nil)
	var buf []byte
	got, err := ReadFrame(bytes.NewReader(frame), &buf, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty payload round-tripped to %d bytes", len(got))
	}
}

// TestReadFrameTruncation cuts a valid frame at every possible byte count:
// each cut must yield ErrTruncatedFrame, never a panic or a silent success.
func TestReadFrameTruncation(t *testing.T) {
	frame := AppendFrame(nil, []byte("some payload bytes"))
	var buf []byte
	for cut := 1; cut < len(frame); cut++ {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]), &buf, 1<<16)
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("cut at %d of %d bytes: got %v, want ErrTruncatedFrame", cut, len(frame), err)
		}
	}
}

// TestReadFrameOversizedPrefix pins the memory-safety property: a length
// prefix beyond the limit is rejected before any allocation.
func TestReadFrameOversizedPrefix(t *testing.T) {
	frame := []byte{0xFF, 0xFF, 0xFF, 0xFF} // prefix claims ~4 GiB
	var buf []byte
	_, err := ReadFrame(bytes.NewReader(frame), &buf, 1<<20)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if cap(buf) != 0 {
		t.Fatalf("oversized prefix allocated a %d-byte buffer", cap(buf))
	}
}

// TestReadFrameDetectsEveryPayloadBitFlip flips every bit of the payload
// section (through the faults.FlipReader used by the wire fuzzer) and
// demands a CRC mismatch for each.
func TestReadFrameDetectsEveryPayloadBitFlip(t *testing.T) {
	payload := []byte{0x01, 0x02, 0x03, 0x04, 0x05}
	frame := AppendFrame(nil, payload)
	var buf []byte
	for off := 4; off < 4+len(payload); off++ {
		for bit := 0; bit < 8; bit++ {
			r := &faults.FlipReader{R: bytes.NewReader(frame), Offset: int64(off), Bit: uint8(bit)}
			_, err := ReadFrame(r, &buf, 1<<16)
			if !errors.Is(err, ErrCRCMismatch) {
				t.Fatalf("flip offset %d bit %d: got %v, want ErrCRCMismatch", off, bit, err)
			}
		}
	}
}

func TestWriteFrameMatchesAppendFrame(t *testing.T) {
	payload := []byte("identical on both paths")
	var w bytes.Buffer
	if err := WriteFrame(&w, payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes(), AppendFrame(nil, payload)) {
		t.Fatal("WriteFrame and AppendFrame produced different frames")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	want := Handshake{
		Version: wireVersion, Rank: 2, World: 3, Seed: 0xDEADBEEFCAFE,
		Method: 1, Budget: 12345, FreezeAfter: -1, Batch: 32,
		ParamTotal: 99999, ModelHash: 0x1122334455667788, StartStep: 77,
	}
	p := AppendHello(nil, want)
	if len(p) != helloLen {
		t.Fatalf("hello payload is %d bytes, want %d", len(p), helloLen)
	}
	got, err := DecodeHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hello round-tripped to %+v, want %+v", got, want)
	}
	if _, err := DecodeHello(p[:helloLen-1]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short hello: got %v, want ErrBadPayload", err)
	}
	if _, err := DecodeHello(AppendAbort(nil, 0, strings.Repeat("x", helloLen-8))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("wrong magic: got %v, want ErrBadMagic", err)
	}
}

func TestAbortRoundTrip(t *testing.T) {
	p := AppendAbort(nil, 3, "seed mismatch: 7 here, peer says 9")
	rank, reason, err := DecodeAbort(p)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 3 || reason != "seed mismatch: 7 here, peer says 9" {
		t.Fatalf("abort round-tripped to rank %d reason %q", rank, reason)
	}
	// The reason is bounded in both directions so a corrupt frame cannot
	// smuggle an oversized payload through the handshake read limit.
	long := AppendAbort(nil, 0, strings.Repeat("z", 3*maxAbortReason))
	if len(long) != 8+maxAbortReason {
		t.Fatalf("oversized reason encoded to %d bytes, want %d", len(long), 8+maxAbortReason)
	}
	if _, _, err := DecodeAbort(p[:7]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short abort: got %v, want ErrBadPayload", err)
	}
}

// TestStepFrameBytesMatchesEncoder is the analytical half of the O(k) wire
// claim: the byte formula the test suite asserts against measured socket
// counters must agree exactly with what the encoder emits — for the dense
// exchange and for the frozen tracked-set exchange.
func TestStepFrameBytesMatchesEncoder(t *testing.T) {
	rows := [][]float32{
		{1, 2, 3, 4, 5, 6, 7},
		{8, 9, 10, 11, 12, 13, 14},
		{15, 16, 17, 18, 19, 20, 21},
	}
	losses := []float64{0.5, 1.25, 2.0}
	correct := []uint8{1, 0, 1}
	h := StepHeader{Rank: 1, Step: 42, Lo: 4, Hi: 7}

	h.Active = 7 // dense: every value crosses
	dense := buildStepPayload(h, losses, correct, rows, nil)
	if got, want := len(AppendFrame(nil, dense)), StepFrameBytes(3, 7); got != want {
		t.Fatalf("dense frame is %d bytes, StepFrameBytes says %d", got, want)
	}

	idx := []int32{0, 2, 5} // frozen: k = 3 tracked values, no index side-band
	h.Active = 3
	sparse := buildStepPayload(h, losses, correct, rows, idx)
	if got, want := len(AppendFrame(nil, sparse)), StepFrameBytes(3, 3); got != want {
		t.Fatalf("tracked frame is %d bytes, StepFrameBytes says %d", got, want)
	}
}

func TestStepPayloadRoundTripDense(t *testing.T) {
	rows := [][]float32{{1.5, -2.5, 3.5}, {4.5, 5.5, float32(math.Inf(1))}}
	h := StepHeader{Rank: 0, Step: 9, Lo: 2, Hi: 4, Active: 3}
	p := buildStepPayload(h, []float64{0.25, 0.75}, []uint8{0, 1}, rows, nil)
	sp, err := ParseStep(p)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Hdr != h || sp.Samples() != 2 {
		t.Fatalf("header round-tripped to %+v (%d samples)", sp.Hdr, sp.Samples())
	}
	for i := 0; i < 2; i++ {
		loss, c := sp.Sample(i)
		if loss != []float64{0.25, 0.75}[i] || c != []uint8{0, 1}[i] {
			t.Fatalf("sample %d meta: loss %v correct %d", i, loss, c)
		}
		dst := make([]float32, 3)
		sp.CopyValues(i, dst, nil)
		for j := range dst {
			if math.Float32bits(dst[j]) != math.Float32bits(rows[i][j]) {
				t.Fatalf("sample %d value %d: %v vs %v", i, j, dst[j], rows[i][j])
			}
		}
	}
}

// TestStepPayloadScatterIndexed pins the frozen-path scatter: value j lands
// at dst[idx[j]] and untouched entries keep their prior contents (which the
// executor relies on being harmless, not on being cleared).
func TestStepPayloadScatterIndexed(t *testing.T) {
	row := []float32{10, 11, 12, 13, 14, 15}
	idx := []int32{1, 3, 4}
	h := StepHeader{Rank: 1, Step: 3, Lo: 0, Hi: 1, Active: 3}
	p := buildStepPayload(h, []float64{1}, []uint8{1}, [][]float32{row}, idx)
	sp, err := ParseStep(p)
	if err != nil {
		t.Fatal(err)
	}
	dst := []float32{-1, -1, -1, -1, -1, -1}
	sp.CopyValues(0, dst, idx)
	want := []float32{-1, 11, -1, 13, 14, -1}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("scatter produced %v, want %v", dst, want)
		}
	}
}

func TestParseStepRejectsMalformed(t *testing.T) {
	h := StepHeader{Rank: 0, Step: 1, Lo: 0, Hi: 2, Active: 3}
	good := buildStepPayload(h, []float64{1, 2}, []uint8{0, 1}, [][]float32{{1, 2, 3}, {4, 5, 6}}, nil)
	if _, err := ParseStep(good); err != nil {
		t.Fatal(err)
	}
	// Inverted row span.
	bad := buildStepPayload(StepHeader{Lo: 5, Hi: 2}, nil, nil, nil, nil)
	if _, err := ParseStep(bad); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("inverted span: got %v, want ErrBadPayload", err)
	}
	// Body shorter than samples × (meta + values).
	if _, err := ParseStep(good[:len(good)-1]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short body: got %v, want ErrBadPayload", err)
	}
	// Body longer than declared.
	if _, err := ParseStep(append(append([]byte(nil), good...), 0)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("long body: got %v, want ErrBadPayload", err)
	}
	// Header too short.
	if _, err := ParseStep(good[:stepHeaderLen-1]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short header: got %v, want ErrBadPayload", err)
	}
	// Not a step payload.
	if _, err := ParseStep(AppendHello(nil, Handshake{})); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("hello payload: got %v, want ErrBadMagic", err)
	}
}

func TestPayloadMagic(t *testing.T) {
	for _, p := range [][]byte{
		AppendHello(nil, Handshake{}),
		AppendStepHeader(nil, StepHeader{}),
		AppendAbort(nil, 0, "r"),
	} {
		if _, err := PayloadMagic(p); err != nil {
			t.Fatalf("valid payload rejected: %v", err)
		}
	}
	if _, err := PayloadMagic([]byte{0, 1, 2, 3}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("unknown magic: got %v, want ErrBadMagic", err)
	}
	if _, err := PayloadMagic([]byte{0, 1}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short payload: got %v, want ErrBadMagic", err)
	}
}
