// Package dist implements stdlib-only multi-process data-parallel training:
// every node trains a contiguous shard of each minibatch through the batched
// shard kernels and exchanges per-sample gradient rows (tracked-set values
// only, once DropBack freezes) over TCP, length-prefixed and CRC-framed, so
// the fold replays the sequential trainer's arithmetic bit-for-bit.
//
// The wire layer in this file is deliberately dumb: fixed-layout big-endian
// frames with a CRC32 trailer, three payload kinds (hello, step, abort), and
// typed errors for every way a frame can be wrong. Anything a peer sends —
// truncated, bit-flipped, oversized, stale — must surface as one of these
// errors, never a panic and never a silent misfold; FuzzReadFrame holds the
// decoder to that.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Typed wire errors. Everything the decoder can reject wraps one of these,
// so callers (and the fault tests) classify failures with errors.Is.
var (
	// ErrFrameTooLarge means a length prefix exceeded the reader's limit —
	// a corrupt prefix or a hostile peer; the frame is not read.
	ErrFrameTooLarge = errors.New("dist: frame length exceeds limit")
	// ErrTruncatedFrame means the stream ended inside a frame.
	ErrTruncatedFrame = errors.New("dist: truncated frame")
	// ErrCRCMismatch means the payload's CRC32 trailer did not match.
	ErrCRCMismatch = errors.New("dist: frame CRC mismatch")
	// ErrBadMagic means the payload's leading magic named no known kind.
	ErrBadMagic = errors.New("dist: unknown payload magic")
	// ErrBadPayload means a structurally invalid payload body.
	ErrBadPayload = errors.New("dist: malformed payload")
	// ErrStaleStep means a step frame carried the wrong step counter.
	ErrStaleStep = errors.New("dist: stale step header")
	// ErrShardMismatch means a peer's shard layout (rank, row span, active
	// count) disagreed with the local partition.
	ErrShardMismatch = errors.New("dist: shard layout mismatch")
	// ErrPeerAborted means the peer sent an abort frame; the message carries
	// its reason.
	ErrPeerAborted = errors.New("dist: peer aborted")
	// ErrHandshakeMismatch means the peer's hello disagreed on a field that
	// would break bit-identity (seed, budget, model hash, …).
	ErrHandshakeMismatch = errors.New("dist: handshake mismatch")
)

// wireVersion is bumped on any incompatible frame-layout change; peers with
// different versions refuse each other at handshake.
const wireVersion = 1

// Payload magics (first four bytes of every payload).
const (
	magicHello uint32 = 0x44424831 // "DBH1"
	magicStep  uint32 = 0x44425331 // "DBS1"
	magicAbort uint32 = 0x44424131 // "DBA1"
)

// frameOverhead is the framing cost around every payload: a 4-byte
// big-endian length prefix and a 4-byte CRC32 (IEEE) trailer.
const frameOverhead = 8

// stepHeaderLen is the fixed step-payload header: magic, rank, step, lo, hi,
// active.
const stepHeaderLen = 4 + 4 + 8 + 4 + 4 + 4

// helloLen is the fixed hello payload length.
const helloLen = 4 + 4 + 4 + 4 + 8 + 4 + 8 + 8 + 4 + 8 + 8 + 8

// sampleMetaLen is the per-sample metadata cost in a step payload: a float64
// loss term and a correctness flag byte.
const sampleMetaLen = 9

// StepFrameBytes returns the exact on-wire size of one step frame carrying
// `samples` batch rows with `active` exchanged values per row — the
// analytical figure the O(k) wire test asserts against the measured byte
// counters. Once DropBack freezes, active is the tracked budget k, so the
// frame scales with k, not the dense parameter count.
func StepFrameBytes(samples, active int) int {
	return frameOverhead + stepHeaderLen + samples*sampleMetaLen + samples*active*4
}

// AppendFrame appends one framed payload (length prefix + payload + CRC32
// trailer) to dst and returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var w [4]byte
	binary.BigEndian.PutUint32(w[:], uint32(len(payload)))
	dst = append(dst, w[:]...)
	dst = append(dst, payload...)
	binary.BigEndian.PutUint32(w[:], crc32.ChecksumIEEE(payload))
	return append(dst, w[:]...)
}

// WriteFrame frames the payload and writes it in a single Write call, so a
// short-write transport surfaces an error instead of a torn frame.
func WriteFrame(w io.Writer, payload []byte) error {
	frame := AppendFrame(make([]byte, 0, len(payload)+frameOverhead), payload)
	n, err := w.Write(frame)
	if err != nil {
		return err
	}
	if n != len(frame) {
		return fmt.Errorf("%w: short write (%d of %d bytes)", ErrTruncatedFrame, n, len(frame))
	}
	return nil
}

// ReadFrame reads one frame from r, reusing *buf across calls, and returns
// the verified payload (valid until the next call). maxPayload bounds the
// length prefix before any allocation, so a corrupt or hostile prefix cannot
// balloon memory. A clean EOF before any byte is returned as io.EOF; any end
// of stream inside a frame is ErrTruncatedFrame.
func ReadFrame(r io.Reader, buf *[]byte, maxPayload int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream ended inside the length prefix", ErrTruncatedFrame)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxPayload) {
		return nil, fmt.Errorf("%w: prefix claims %d bytes, limit %d", ErrFrameTooLarge, n, maxPayload)
	}
	need := int(n) + 4
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	b := (*buf)[:need]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, fmt.Errorf("%w: stream ended inside a %d-byte frame: %v", ErrTruncatedFrame, n, err)
	}
	payload := b[:n]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[n:]); got != want {
		return nil, fmt.Errorf("%w: computed %08x, trailer says %08x", ErrCRCMismatch, got, want)
	}
	return payload, nil
}

// PayloadMagic returns the payload's leading magic, or ErrBadMagic when the
// payload is too short or names no known kind.
func PayloadMagic(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("%w: %d-byte payload has no magic", ErrBadMagic, len(p))
	}
	m := binary.BigEndian.Uint32(p)
	switch m {
	case magicHello, magicStep, magicAbort:
		return m, nil
	}
	return 0, fmt.Errorf("%w: %08x", ErrBadMagic, m)
}

// Handshake is the field set every pair of peers must agree on before any
// gradients cross the wire: anything here that differed between nodes would
// silently break bit-identity, so a mismatch refuses the connection instead.
// Version, Rank, and World are filled by the cluster; the trainer supplies
// the run identity (seed, method, budget, freeze epoch, batch size, the
// parameter-space hash, and the step the run starts at — nonzero when
// resuming from a checkpoint, so every node must have loaded the same one).
type Handshake struct {
	Version     uint32
	Rank        uint32
	World       uint32
	Seed        uint64
	Method      uint32
	Budget      uint64
	FreezeAfter int64
	Batch       uint32
	ParamTotal  uint64
	ModelHash   uint64
	StartStep   uint64
}

// AppendHello appends the handshake's hello payload to dst.
func AppendHello(dst []byte, h Handshake) []byte {
	dst = appendU32(dst, magicHello)
	dst = appendU32(dst, h.Version)
	dst = appendU32(dst, h.Rank)
	dst = appendU32(dst, h.World)
	dst = appendU64(dst, h.Seed)
	dst = appendU32(dst, h.Method)
	dst = appendU64(dst, h.Budget)
	dst = appendU64(dst, uint64(h.FreezeAfter))
	dst = appendU32(dst, h.Batch)
	dst = appendU64(dst, h.ParamTotal)
	dst = appendU64(dst, h.ModelHash)
	dst = appendU64(dst, h.StartStep)
	return dst
}

// DecodeHello parses a hello payload.
func DecodeHello(p []byte) (Handshake, error) {
	var h Handshake
	if len(p) != helloLen {
		return h, fmt.Errorf("%w: hello payload is %d bytes, want %d", ErrBadPayload, len(p), helloLen)
	}
	if binary.BigEndian.Uint32(p) != magicHello {
		return h, fmt.Errorf("%w: not a hello payload", ErrBadMagic)
	}
	h.Version = binary.BigEndian.Uint32(p[4:])
	h.Rank = binary.BigEndian.Uint32(p[8:])
	h.World = binary.BigEndian.Uint32(p[12:])
	h.Seed = binary.BigEndian.Uint64(p[16:])
	h.Method = binary.BigEndian.Uint32(p[24:])
	h.Budget = binary.BigEndian.Uint64(p[28:])
	h.FreezeAfter = int64(binary.BigEndian.Uint64(p[36:]))
	h.Batch = binary.BigEndian.Uint32(p[44:])
	h.ParamTotal = binary.BigEndian.Uint64(p[48:])
	h.ModelHash = binary.BigEndian.Uint64(p[56:])
	h.StartStep = binary.BigEndian.Uint64(p[64:])
	return h, nil
}

// maxAbortReason bounds the abort reason so a corrupt frame cannot smuggle
// an arbitrarily large payload past the handshake-sized read limit.
const maxAbortReason = 512

// AppendAbort appends an abort payload (sender rank + human-readable reason)
// to dst. The reason is truncated to maxAbortReason bytes.
func AppendAbort(dst []byte, rank uint32, reason string) []byte {
	if len(reason) > maxAbortReason {
		reason = reason[:maxAbortReason]
	}
	dst = appendU32(dst, magicAbort)
	dst = appendU32(dst, rank)
	return append(dst, reason...)
}

// DecodeAbort parses an abort payload into the sender's rank and reason.
func DecodeAbort(p []byte) (rank uint32, reason string, err error) {
	if len(p) < 8 {
		return 0, "", fmt.Errorf("%w: abort payload is %d bytes, want >= 8", ErrBadPayload, len(p))
	}
	if binary.BigEndian.Uint32(p) != magicAbort {
		return 0, "", fmt.Errorf("%w: not an abort payload", ErrBadMagic)
	}
	r := p[8:]
	if len(r) > maxAbortReason {
		r = r[:maxAbortReason]
	}
	return binary.BigEndian.Uint32(p[4:]), string(r), nil
}

// StepHeader is the fixed header of a step payload: who sent it, which
// optimizer step it belongs to, the contiguous batch-row span [Lo, Hi) the
// sender computed, and how many gradient values each row carries (the dense
// parameter total before DropBack freezes, the tracked budget k after).
type StepHeader struct {
	Rank   uint32
	Step   uint64
	Lo, Hi uint32
	Active uint32
}

// AppendStepHeader appends the step header to dst.
func AppendStepHeader(dst []byte, h StepHeader) []byte {
	dst = appendU32(dst, magicStep)
	dst = appendU32(dst, h.Rank)
	dst = appendU64(dst, h.Step)
	dst = appendU32(dst, h.Lo)
	dst = appendU32(dst, h.Hi)
	dst = appendU32(dst, h.Active)
	return dst
}

// DecodeStepHeader parses just the fixed header of a step payload.
func DecodeStepHeader(p []byte) (StepHeader, error) {
	var h StepHeader
	if len(p) < stepHeaderLen {
		return h, fmt.Errorf("%w: step payload is %d bytes, header needs %d", ErrBadPayload, len(p), stepHeaderLen)
	}
	if binary.BigEndian.Uint32(p) != magicStep {
		return h, fmt.Errorf("%w: not a step payload", ErrBadMagic)
	}
	h.Rank = binary.BigEndian.Uint32(p[4:])
	h.Step = binary.BigEndian.Uint64(p[8:])
	h.Lo = binary.BigEndian.Uint32(p[16:])
	h.Hi = binary.BigEndian.Uint32(p[20:])
	h.Active = binary.BigEndian.Uint32(p[24:])
	return h, nil
}

// AppendSample appends one sample's metadata (loss term + correct flag) to a
// step payload under construction.
func AppendSample(dst []byte, loss float64, correct uint8) []byte {
	dst = appendU64(dst, math.Float64bits(loss))
	return append(dst, correct)
}

// AppendSampleValues appends one sample's gradient values. With idx nil the
// whole row goes on the wire (dense exchange); otherwise only row[i] for the
// ascending tracked indices in idx (the O(k) frozen-set exchange).
func AppendSampleValues(dst []byte, row []float32, idx []int32) []byte {
	if idx == nil {
		for _, v := range row {
			dst = appendU32(dst, math.Float32bits(v))
		}
		return dst
	}
	for _, i := range idx {
		dst = appendU32(dst, math.Float32bits(row[i]))
	}
	return dst
}

// StepPayload is a validated view over a received step payload: the header
// plus bounds-checked accessors into the sample metadata and value sections.
type StepPayload struct {
	Hdr  StepHeader
	body []byte // payload minus the fixed header
}

// ParseStep validates a step payload's structure — header magic, a sane row
// span, and a body length that exactly matches samples × (metadata + active
// values) — and returns the accessor view. It does NOT check step/rank
// freshness; the cluster does that against its own counters.
func ParseStep(p []byte) (StepPayload, error) {
	var s StepPayload
	h, err := DecodeStepHeader(p)
	if err != nil {
		return s, err
	}
	if h.Hi < h.Lo {
		return s, fmt.Errorf("%w: step row span [%d, %d) is inverted", ErrBadPayload, h.Lo, h.Hi)
	}
	samples := int64(h.Hi) - int64(h.Lo)
	want := samples*sampleMetaLen + samples*int64(h.Active)*4
	if got := int64(len(p) - stepHeaderLen); got != want {
		return s, fmt.Errorf("%w: step body is %d bytes, %d samples × %d active values need %d",
			ErrBadPayload, got, samples, h.Active, want)
	}
	s.Hdr = h
	s.body = p[stepHeaderLen:]
	return s, nil
}

// Samples returns the number of batch rows the payload carries.
func (s *StepPayload) Samples() int { return int(s.Hdr.Hi - s.Hdr.Lo) }

// Sample returns the i-th carried row's loss term and correct flag.
func (s *StepPayload) Sample(i int) (loss float64, correct uint8) {
	off := i * sampleMetaLen
	return math.Float64frombits(binary.BigEndian.Uint64(s.body[off:])), s.body[off+8]
}

// CopyValues scatters the i-th carried row's gradient values into dst. With
// idx nil the row is dense (Active values copied in order, which must equal
// len(dst)); otherwise value j lands at dst[idx[j]] — the receiver supplies
// the same ascending tracked-index list the sender gathered with, which both
// sides derive from identical DropBack state rather than the wire.
func (s *StepPayload) CopyValues(i int, dst []float32, idx []int32) {
	off := s.Samples()*sampleMetaLen + i*int(s.Hdr.Active)*4
	if idx == nil {
		for j := 0; j < int(s.Hdr.Active); j++ {
			dst[j] = math.Float32frombits(binary.BigEndian.Uint32(s.body[off+j*4:]))
		}
		return
	}
	for j, g := range idx {
		dst[g] = math.Float32frombits(binary.BigEndian.Uint32(s.body[off+j*4:]))
	}
}

func appendU32(dst []byte, v uint32) []byte {
	var w [4]byte
	binary.BigEndian.PutUint32(w[:], v)
	return append(dst, w[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var w [8]byte
	binary.BigEndian.PutUint64(w[:], v)
	return append(dst, w[:]...)
}
