package dist

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzMaxPayload keeps the fuzzer's allocations bounded; real clusters run
// with a much larger limit, but the decoder's behavior must not depend on it.
const fuzzMaxPayload = 1 << 16

// isTypedWireError reports whether err belongs to the decoder's declared
// error taxonomy (or is a plain stream-end condition). FuzzReadFrame holds
// the whole decode path to this set: arbitrary bytes may be rejected, but
// only with a classified error.
func isTypedWireError(err error) bool {
	for _, want := range []error{
		ErrFrameTooLarge, ErrTruncatedFrame, ErrCRCMismatch,
		ErrBadMagic, ErrBadPayload, ErrStaleStep, ErrShardMismatch,
		ErrPeerAborted, ErrHandshakeMismatch, io.EOF,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// FuzzReadFrame feeds arbitrary byte streams through the full receive path —
// frame deframing, CRC check, magic dispatch, and payload decoding — and
// requires that every outcome is either a structurally valid payload or a
// typed error. No input may panic, allocate beyond the frame limit, or
// decode to a payload that re-encodes differently (the round-trip check
// below catches silent misparses).
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames of every payload kind.
	hello := AppendHello(nil, Handshake{
		Version: wireVersion, Rank: 1, World: 3, Seed: 42, Method: 1,
		Budget: 1000, FreezeAfter: 2, Batch: 16, ParamTotal: 5000,
		ModelHash: 0xABCDEF, StartStep: 7,
	})
	step := buildStepPayload(
		StepHeader{Rank: 2, Step: 11, Lo: 3, Hi: 5, Active: 4},
		[]float64{0.5, 1.5}, []uint8{1, 0},
		[][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}}, nil,
	)
	abort := AppendAbort(nil, 0, "deliberate shutdown")
	f.Add(AppendFrame(nil, hello))
	f.Add(AppendFrame(nil, step))
	f.Add(AppendFrame(nil, abort))

	// Truncations at interesting boundaries.
	frame := AppendFrame(nil, step)
	f.Add(frame[:2])                               // inside the length prefix
	f.Add(frame[:6])                               // inside the payload
	f.Add(frame[:len(frame)-2])                    // inside the CRC trailer
	f.Add([]byte{})                                // empty stream
	f.Add([]byte{0, 0, 0, 0})                      // zero-length frame, missing CRC
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}) // oversized prefix

	// Single-bit corruptions in the prefix, payload, and trailer.
	for _, off := range []int{0, 3, 4, 12, len(frame) - 1} {
		mut := append([]byte(nil), frame...)
		mut[off] ^= 0x10
		f.Add(mut)
	}

	// A stale-step header inside a valid frame (decodes fine at this layer;
	// the cluster rejects it against its own counter — the fuzz target just
	// must not confuse it with corruption).
	stale := buildStepPayload(StepHeader{Rank: 2, Step: 9, Lo: 0, Hi: 1, Active: 2},
		[]float64{1}, []uint8{1}, [][]float32{{1, 2}}, nil)
	f.Add(AppendFrame(nil, stale))

	// Two frames back to back: the reader must consume exactly one.
	f.Add(append(AppendFrame(nil, abort), AppendFrame(nil, hello)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		payload, err := ReadFrame(r, &buf, fuzzMaxPayload)
		if err != nil {
			if !isTypedWireError(err) {
				t.Fatalf("untyped deframe error: %v", err)
			}
			return
		}
		// The frame checked out; every payload decoder must now either
		// produce a structurally valid value or a typed error — on any
		// payload, not just the kind its magic names.
		magic, merr := PayloadMagic(payload)
		if merr != nil {
			if !isTypedWireError(merr) {
				t.Fatalf("untyped magic error: %v", merr)
			}
			return
		}
		switch magic {
		case magicHello:
			h, derr := DecodeHello(payload)
			if derr != nil {
				if !isTypedWireError(derr) {
					t.Fatalf("untyped hello error: %v", derr)
				}
				return
			}
			if !bytes.Equal(AppendHello(nil, h), payload) {
				t.Fatalf("hello did not round-trip: %+v", h)
			}
		case magicStep:
			sp, derr := ParseStep(payload)
			if derr != nil {
				if !isTypedWireError(derr) {
					t.Fatalf("untyped step error: %v", derr)
				}
				return
			}
			// Exercise every accessor over the validated view: all reads
			// must stay in bounds for any payload ParseStep accepted. With
			// zero samples Active is unconstrained by the length check (the
			// body is empty either way), so size the scratch only when rows
			// exist — then Active is bounded by the frame limit.
			if sp.Samples() > 0 {
				dst := make([]float32, sp.Hdr.Active)
				for i := 0; i < sp.Samples(); i++ {
					sp.Sample(i)
					sp.CopyValues(i, dst, nil)
				}
			}
		case magicAbort:
			if _, _, derr := DecodeAbort(payload); derr != nil && !isTypedWireError(derr) {
				t.Fatalf("untyped abort error: %v", derr)
			}
		}
	})
}
