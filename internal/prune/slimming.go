package prune

import (
	"fmt"
	"sort"

	"dropback/internal/nn"
)

// Slimming implements network slimming (Liu et al. 2017), the paper's
// train-prune-retrain baseline: training adds an L1 penalty on every batch
// normalization scale factor γ, pruning removes the channels with the
// globally smallest |γ|, and fine-tuning continues training with the pruned
// channels pinned to zero.
//
// Because BN scale factors gate entire channels, zeroing (γ, β) for a
// channel removes its contribution exactly; the convolution weights feeding
// it become dead and are counted as removed in the compression estimate.
type Slimming struct {
	// Lambda is the L1 penalty strength on γ.
	Lambda float32
	// PruneFraction is the fraction of BN channels removed at Prune time;
	// the paper's "Slimming .75" rows use 0.75.
	PruneFraction float64

	bns    []*nn.BatchNorm
	pruned bool
	// masks[i][c] is true when channel c of bns[i] survives pruning.
	masks [][]bool
}

// NewSlimming collects every BatchNorm in the layer tree.
func NewSlimming(root nn.Layer, lambda float32, pruneFraction float64) *Slimming {
	if pruneFraction < 0 || pruneFraction >= 1 {
		panic(fmt.Sprintf("prune: slimming fraction %v out of [0,1)", pruneFraction))
	}
	s := &Slimming{Lambda: lambda, PruneFraction: pruneFraction}
	nn.Walk(root, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm); ok {
			s.bns = append(s.bns, bn)
		}
	})
	return s
}

// BatchNormCount returns the number of BN layers under management.
func (s *Slimming) BatchNormCount() int { return len(s.bns) }

// AddL1Grads injects λ·sign(γ) into every γ gradient buffer; call between
// the backward pass and the optimizer step during the sparsity-training
// phase.
func (s *Slimming) AddL1Grads() {
	for _, bn := range s.bns {
		for i, g := range bn.Gamma.Value.Data {
			switch {
			case g > 0:
				bn.Gamma.Grad.Data[i] += s.Lambda
			case g < 0:
				bn.Gamma.Grad.Data[i] -= s.Lambda
			}
		}
	}
}

// Prune selects the global |γ| threshold removing PruneFraction of all
// channels, zeroes (γ, β) for pruned channels, and records the channel
// masks used during fine-tuning. It returns the number of channels pruned.
func (s *Slimming) Prune() int {
	var all []float32
	for _, bn := range s.bns {
		for _, g := range bn.Gamma.Value.Data {
			a := g
			if a < 0 {
				a = -a
			}
			all = append(all, a)
		}
	}
	if len(all) == 0 {
		s.pruned = true
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cut := int(float64(len(all)) * s.PruneFraction)
	if cut >= len(all) {
		cut = len(all) - 1
	}
	thresh := all[cut]
	prunedCount := 0
	s.masks = s.masks[:0]
	for _, bn := range s.bns {
		mask := make([]bool, bn.C)
		kept := 0
		for c, g := range bn.Gamma.Value.Data {
			a := g
			if a < 0 {
				a = -a
			}
			if a >= thresh && kept < bn.C { // keep channels at/above threshold
				mask[c] = true
				kept++
			}
		}
		// Never prune every channel of a layer: the network would emit
		// all-zero activations. Keep the largest-|γ| channel.
		if kept == 0 {
			best, bestAbs := 0, float32(-1)
			for c, g := range bn.Gamma.Value.Data {
				a := g
				if a < 0 {
					a = -a
				}
				if a > bestAbs {
					bestAbs, best = a, c
				}
			}
			mask[best] = true
		}
		for c, keep := range mask {
			if !keep {
				bn.Gamma.Value.Data[c] = 0
				bn.Beta.Value.Data[c] = 0
				prunedCount++
			}
		}
		s.masks = append(s.masks, mask)
	}
	s.pruned = true
	return prunedCount
}

// Pruned reports whether Prune has run.
func (s *Slimming) Pruned() bool { return s.pruned }

// AfterStep keeps pruned channels dead during fine-tuning by re-zeroing
// their (γ, β) after every optimizer step. Before Prune it is a no-op.
func (s *Slimming) AfterStep() {
	if !s.pruned {
		return
	}
	for i, bn := range s.bns {
		for c, keep := range s.masks[i] {
			if !keep {
				bn.Gamma.Value.Data[c] = 0
				bn.Beta.Value.Data[c] = 0
			}
		}
	}
}

// ChannelCounts returns (pruned, total) channel counts after Prune.
func (s *Slimming) ChannelCounts() (pruned, total int) {
	for i, bn := range s.bns {
		total += bn.C
		if s.pruned {
			for _, keep := range s.masks[i] {
				if !keep {
					pruned++
				}
			}
		}
	}
	return pruned, total
}

// CompressionRatio estimates the weight compression achieved by channel
// pruning as total/kept channels. Each pruned channel removes its incoming
// convolution filter and BN parameters, so channel-level compression tracks
// parameter-level compression to first order — the same accounting the
// slimming paper reports.
func (s *Slimming) CompressionRatio() float64 {
	pruned, total := s.ChannelCounts()
	kept := total - pruned
	if kept <= 0 || total == 0 {
		return 1
	}
	return float64(total) / float64(kept)
}
