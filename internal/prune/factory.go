package prune

import "dropback/internal/nn"

// LayerFactory abstracts construction of the weight-bearing layers so the
// same model topology (in internal/models) can be built with standard
// layers or with variational-dropout layers for the VD baseline runs.
type LayerFactory interface {
	// Linear builds a fully connected layer with bias.
	Linear(name string, seed uint64, in, out int) nn.Layer
	// Conv2D builds a square-kernel convolution with bias.
	Conv2D(name string, seed uint64, inC, outC, k, stride, pad int) nn.Layer
	// Conv2DNoBias builds a square-kernel convolution without bias.
	Conv2DNoBias(name string, seed uint64, inC, outC, k, stride, pad int) nn.Layer
}

// Standard builds plain layers — the default factory.
type Standard struct{}

// Linear implements LayerFactory.
func (Standard) Linear(name string, seed uint64, in, out int) nn.Layer {
	return nn.NewLinear(name, seed, in, out)
}

// Conv2D implements LayerFactory.
func (Standard) Conv2D(name string, seed uint64, inC, outC, k, stride, pad int) nn.Layer {
	return nn.NewConv2D(name, seed, inC, outC, k, stride, pad)
}

// Conv2DNoBias implements LayerFactory.
func (Standard) Conv2DNoBias(name string, seed uint64, inC, outC, k, stride, pad int) nn.Layer {
	return nn.NewConv2DNoBias(name, seed, inC, outC, k, stride, pad)
}

// Variational builds VD layers for the variational-dropout baseline.
type Variational struct{}

// Linear implements LayerFactory.
func (Variational) Linear(name string, seed uint64, in, out int) nn.Layer {
	return NewVDLinear(name, seed, in, out)
}

// Conv2D implements LayerFactory.
func (Variational) Conv2D(name string, seed uint64, inC, outC, k, stride, pad int) nn.Layer {
	return NewVDConv2D(name, seed, inC, outC, k, stride, pad)
}

// Conv2DNoBias implements LayerFactory. VD convolutions always carry a
// bias; the distinction only matters for BN-adjacent standard convolutions.
func (Variational) Conv2DNoBias(name string, seed uint64, inC, outC, k, stride, pad int) nn.Layer {
	return NewVDConv2D(name, seed, inC, outC, k, stride, pad)
}
