package prune

import (
	"math"
	"testing"

	"dropback/internal/nn"
	"dropback/internal/tensor"
	"dropback/internal/xorshift"
)

func TestMagnitudeKeepsTopWeights(t *testing.T) {
	fc := nn.NewLinear("m/fc", 1, 4, 4) // 20 params
	set := nn.NewParamSet(fc)
	// Make magnitudes equal to index for determinism.
	for g := 0; g < set.Total(); g++ {
		set.Set(g, float32(g))
	}
	p := NewMagnitude(set, 0.75) // keep 5
	if p.Keep() != 5 {
		t.Fatalf("Keep = %d, want 5", p.Keep())
	}
	p.Apply()
	for g := 0; g < set.Total(); g++ {
		v := set.Get(g)
		if g >= 15 && v != float32(g) {
			t.Fatalf("top weight %d was modified: %v", g, v)
		}
		if g < 15 && v != 0 {
			t.Fatalf("low weight %d not zeroed: %v", g, v)
		}
	}
	if p.CompressionRatio() != 4 {
		t.Fatalf("compression = %v, want 4", p.CompressionRatio())
	}
}

func TestMagnitudeZeroesNotRegenerates(t *testing.T) {
	// The defining contrast with DropBack: losers go to 0, not to init.
	fc := nn.NewLinear("m2/fc", 9, 10, 10)
	set := nn.NewParamSet(fc)
	p := NewMagnitude(set, 0.9)
	p.Apply()
	zeros := 0
	for g := 0; g < set.Total(); g++ {
		if set.Get(g) == 0 {
			zeros++
		}
	}
	if zeros < set.Total()-p.Keep() {
		t.Fatalf("only %d zeros, want >= %d", zeros, set.Total()-p.Keep())
	}
}

func TestMagnitudeUsesAbsoluteValue(t *testing.T) {
	fc := nn.NewLinear("m3/fc", 1, 2, 2) // 6 params
	set := nn.NewParamSet(fc)
	vals := []float32{-10, 1, -2, 3, 0.5, -9}
	for g, v := range vals {
		set.Set(g, v)
	}
	p := NewMagnitude(set, 0.5) // keep 3: |-10|, |-9|, |3|
	p.Apply()
	if set.Get(0) != -10 || set.Get(5) != -9 || set.Get(3) != 3 {
		t.Fatal("largest-|w| weights must survive")
	}
	if set.Get(1) != 0 || set.Get(2) != 0 || set.Get(4) != 0 {
		t.Fatal("small-|w| weights must be zeroed")
	}
}

func TestMagnitudeCountsZeroWrites(t *testing.T) {
	fc := nn.NewLinear("m4/fc", 7, 8, 4)
	set := nn.NewParamSet(fc)
	p := NewMagnitude(set, 0.5)
	p.Apply()
	first := p.Zeroed()
	if first == 0 {
		t.Fatal("no zeroing recorded")
	}
	// Second Apply: already-zero weights must not be re-counted.
	p.Apply()
	if p.Zeroed() != first {
		t.Fatalf("re-zeroing counted: %d -> %d", first, p.Zeroed())
	}
}

func TestMagnitudeBadFractionPanics(t *testing.T) {
	set := nn.NewParamSet(nn.NewLinear("m5/fc", 1, 2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for fraction 1")
		}
	}()
	NewMagnitude(set, 1)
}

func TestVDLinearForwardEvalIsDeterministic(t *testing.T) {
	l := NewVDLinear("vd/fc", 3, 4, 2)
	x := tensor.Full(1, 2, 4)
	a := l.Forward(x, false)
	b := l.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("eval forward must be deterministic")
		}
	}
}

func TestVDLinearTrainInjectsNoise(t *testing.T) {
	l := NewVDLinear("vd2/fc", 3, 4, 2)
	// Raise alpha so the noise is visible.
	l.noise.LogAlpha.Value.Fill(0)
	x := tensor.Full(1, 2, 4)
	a := l.Forward(x, true).Clone()
	b := l.Forward(x, true)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("training forwards with alpha=1 must differ between steps")
	}
}

func TestVDEvalPrunesHighAlpha(t *testing.T) {
	l := NewVDLinear("vd3/fc", 3, 3, 2)
	l.noise.LogAlpha.Value.Fill(4) // above threshold 3: all weights pruned
	x := tensor.Full(1, 1, 3)
	y := l.Forward(x, false)
	for _, v := range y.Data {
		if v != 0 { // bias is zero-initialized, weights pruned
			t.Fatalf("pruned VD layer output = %v, want 0", v)
		}
	}
}

func TestVDGradientCheckTheta(t *testing.T) {
	// With logα pinned very low the noise is ~0 and the theta gradient must
	// match a plain linear layer's numeric gradient.
	l := NewVDLinear("vd4/fc", 5, 3, 2)
	l.noise.LogAlpha.Value.Fill(-20)
	x := tensor.New(2, 3)
	for i := range x.Data {
		x.Data[i] = xorshift.IndexedNormal(70, uint64(i))
	}
	r := tensor.New(2, 2)
	for i := range r.Data {
		r.Data[i] = xorshift.IndexedNormal(71, uint64(i))
	}
	loss := func() float64 { return tensor.Dot(l.Forward(x, true), r) }
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	l.Forward(x, true)
	l.Backward(r)
	const eps = 1e-2
	theta := l.noise.Theta
	for i := range theta.Value.Data {
		orig := theta.Value.Data[i]
		theta.Value.Data[i] = orig + eps
		lp := loss()
		theta.Value.Data[i] = orig - eps
		lm := loss()
		theta.Value.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-float64(theta.Grad.Data[i])) > 2e-2*(1+math.Abs(numeric)) {
			t.Fatalf("theta grad[%d]: analytic %v vs numeric %v", i, theta.Grad.Data[i], numeric)
		}
	}
}

func TestVDKLGradMatchesNumeric(t *testing.T) {
	for _, la := range []float64{-6, -2, 0, 1.5, 3} {
		kl1, grad := vdKLAndGrad(la)
		const eps = 1e-5
		kp, _ := vdKLAndGrad(la + eps)
		km, _ := vdKLAndGrad(la - eps)
		numeric := (kp - km) / (2 * eps)
		if math.Abs(numeric-grad) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("logα=%v: KL grad analytic %v vs numeric %v (kl=%v)", la, grad, numeric, kl1)
		}
	}
}

func TestVDKLPushesAlphaUpForUselessWeights(t *testing.T) {
	// With no data gradient, SGD on the KL term alone must increase logα
	// (the mechanism that creates sparsity).
	la := -2.0
	for i := 0; i < 500; i++ {
		_, g := vdKLAndGrad(la)
		la -= 0.1 * g
	}
	if la <= 0 {
		t.Fatalf("KL descent left logα at %v, want growth toward sparsity", la)
	}
}

func TestVDCoordinatorFindsNestedLayers(t *testing.T) {
	net := nn.NewSequential("v",
		NewVDLinear("v/fc1", 1, 4, 4),
		nn.NewReLU("v/r"),
		nn.NewSequential("v/inner", NewVDLinear("v/fc2", 1, 4, 2)),
	)
	vd := NewVD(net, 1e-4)
	if vd.LayerCount() != 2 {
		t.Fatalf("found %d VD layers, want 2", vd.LayerCount())
	}
}

func TestVDSparsityAndCompression(t *testing.T) {
	l := NewVDLinear("vs/fc", 1, 4, 2) // 8 weights
	net := nn.NewSequential("vs", l)
	vd := NewVD(net, 1e-4)
	// Prune half the weights.
	for i := 0; i < 4; i++ {
		l.noise.LogAlpha.Value.Data[i] = 4
	}
	pruned, total := vd.Sparsity()
	if pruned != 4 || total != 8 {
		t.Fatalf("sparsity = (%d,%d), want (4,8)", pruned, total)
	}
	if vd.CompressionRatio() != 2 {
		t.Fatalf("compression = %v, want 2", vd.CompressionRatio())
	}
}

func TestVDClamp(t *testing.T) {
	l := NewVDLinear("vc/fc", 1, 2, 2)
	net := nn.NewSequential("vc", l)
	vd := NewVD(net, 1e-4)
	l.noise.LogAlpha.Value.Data[0] = 100
	l.noise.LogAlpha.Value.Data[1] = -100
	vd.AfterStep()
	if l.noise.LogAlpha.Value.Data[0] != 4 || l.noise.LogAlpha.Value.Data[1] != -10 {
		t.Fatalf("clamp failed: %v", l.noise.LogAlpha.Value.Data[:2])
	}
}

func TestVDConvRuns(t *testing.T) {
	l := NewVDConv2D("vconv", 2, 2, 3, 3, 1, 1)
	x := tensor.Full(1, 2, 2, 5, 5)
	y := l.Forward(x, true)
	if y.Shape[1] != 3 || y.Shape[2] != 5 {
		t.Fatalf("VD conv output shape %v", y.Shape)
	}
	dy := tensor.Full(1, 2, 3, 5, 5)
	dx := l.Backward(dy)
	if !dx.SameShape(x) {
		t.Fatalf("VD conv backward shape %v", dx.Shape)
	}
	var thetaGradNonzero bool
	for _, g := range l.noise.Theta.Grad.Data {
		if g != 0 {
			thetaGradNonzero = true
			break
		}
	}
	if !thetaGradNonzero {
		t.Fatal("VD conv produced no theta gradients")
	}
}

func buildBNNet() (*nn.Sequential, []*nn.BatchNorm) {
	bn1 := nn.NewBatchNorm("s/bn1", 1, 4)
	bn2 := nn.NewBatchNorm("s/bn2", 1, 4)
	net := nn.NewSequential("s",
		nn.NewLinear("s/fc1", 1, 4, 4), bn1, nn.NewReLU("s/r1"),
		nn.NewLinear("s/fc2", 1, 4, 4), bn2,
	)
	return net, []*nn.BatchNorm{bn1, bn2}
}

func TestSlimmingFindsBatchNorms(t *testing.T) {
	net, _ := buildBNNet()
	s := NewSlimming(net, 1e-4, 0.5)
	if s.BatchNormCount() != 2 {
		t.Fatalf("found %d BNs, want 2", s.BatchNormCount())
	}
}

func TestSlimmingL1Grads(t *testing.T) {
	net, bns := buildBNNet()
	s := NewSlimming(net, 0.01, 0.5)
	bns[0].Gamma.Value.Data[0] = 2
	bns[0].Gamma.Value.Data[1] = -2
	bns[0].Gamma.Value.Data[2] = 0
	nn.NewParamSet(net).ZeroGrads()
	s.AddL1Grads()
	if bns[0].Gamma.Grad.Data[0] != 0.01 {
		t.Fatalf("positive gamma grad = %v, want 0.01", bns[0].Gamma.Grad.Data[0])
	}
	if bns[0].Gamma.Grad.Data[1] != -0.01 {
		t.Fatalf("negative gamma grad = %v, want -0.01", bns[0].Gamma.Grad.Data[1])
	}
	if bns[0].Gamma.Grad.Data[2] != 0 {
		t.Fatalf("zero gamma grad = %v, want 0", bns[0].Gamma.Grad.Data[2])
	}
}

func TestSlimmingPruneRemovesSmallestChannels(t *testing.T) {
	net, bns := buildBNNet()
	s := NewSlimming(net, 1e-4, 0.5)
	// Smallest four |γ| are split across both layers: bn1 {1,2}, bn2 {3,4}.
	copy(bns[0].Gamma.Value.Data, []float32{1, 2, 10, 11})
	copy(bns[1].Gamma.Value.Data, []float32{3, 4, 12, 13})
	pruned := s.Prune()
	if pruned != 4 {
		t.Fatalf("pruned %d channels, want 4", pruned)
	}
	for _, want := range []struct {
		bn   int
		c    int
		dead bool
	}{{0, 0, true}, {0, 1, true}, {0, 2, false}, {0, 3, false}, {1, 0, true}, {1, 1, true}, {1, 2, false}, {1, 3, false}} {
		g := bns[want.bn].Gamma.Value.Data[want.c]
		if want.dead && g != 0 {
			t.Fatalf("bn%d channel %d should be pruned, γ=%v", want.bn, want.c, g)
		}
		if !want.dead && g == 0 {
			t.Fatalf("bn%d channel %d should survive", want.bn, want.c)
		}
		if want.dead && bns[want.bn].Beta.Value.Data[want.c] != 0 {
			t.Fatal("pruned channel's beta not zeroed")
		}
	}
}

func TestSlimmingLayerGuardKeepsOneChannel(t *testing.T) {
	// When the global threshold would kill every channel of a layer, the
	// largest-|γ| channel is kept alive so the network can still compute.
	net, bns := buildBNNet()
	s := NewSlimming(net, 1e-4, 0.5)
	copy(bns[0].Gamma.Value.Data, []float32{1, 2, 3, 4})
	copy(bns[1].Gamma.Value.Data, []float32{10, 11, 12, 13})
	pruned := s.Prune()
	if pruned != 3 {
		t.Fatalf("pruned %d channels, want 3 (guard saves one)", pruned)
	}
	if bns[0].Gamma.Value.Data[3] != 4 {
		t.Fatal("guard must keep the largest-|γ| channel of the doomed layer")
	}
}

func TestSlimmingNeverPrunesWholeLayerToZero(t *testing.T) {
	// Wait — pruning all of bn1 is allowed (4 of 8 = 0.5) but masks must
	// keep at least one channel alive when a layer would lose everything.
	net, bns := buildBNNet()
	s := NewSlimming(net, 1e-4, 0.6) // would prune 4.8 -> cut inside bn1
	for i := 0; i < 4; i++ {
		bns[0].Gamma.Value.Data[i] = 0.001 * float32(i+1)
		bns[1].Gamma.Value.Data[i] = 10
	}
	s.Prune()
	alive := 0
	for _, g := range bns[0].Gamma.Value.Data {
		if g != 0 {
			alive++
		}
	}
	if alive < 1 {
		t.Fatal("slimming must keep at least one channel per layer")
	}
}

func TestSlimmingAfterStepKeepsChannelsDead(t *testing.T) {
	net, bns := buildBNNet()
	s := NewSlimming(net, 1e-4, 0.5)
	for i := 0; i < 4; i++ {
		bns[0].Gamma.Value.Data[i] = float32(i + 1)
		bns[1].Gamma.Value.Data[i] = float32(10 + i)
	}
	s.Prune()
	// Fine-tune step "accidentally" revives a pruned channel.
	bns[0].Gamma.Value.Data[0] = 5
	s.AfterStep()
	if bns[0].Gamma.Value.Data[0] != 0 {
		t.Fatal("AfterStep must re-kill pruned channels")
	}
}

func TestSlimmingAfterStepNoopBeforePrune(t *testing.T) {
	net, bns := buildBNNet()
	s := NewSlimming(net, 1e-4, 0.5)
	bns[0].Gamma.Value.Data[0] = 7
	s.AfterStep()
	if bns[0].Gamma.Value.Data[0] != 7 {
		t.Fatal("AfterStep before Prune must be a no-op")
	}
}

func TestSlimmingCompression(t *testing.T) {
	net, bns := buildBNNet()
	s := NewSlimming(net, 1e-4, 0.5)
	copy(bns[0].Gamma.Value.Data, []float32{1, 2, 10, 11})
	copy(bns[1].Gamma.Value.Data, []float32{3, 4, 12, 13})
	if s.CompressionRatio() != 1 {
		t.Fatal("compression before prune must be 1")
	}
	s.Prune()
	if got := s.CompressionRatio(); got != 2 {
		t.Fatalf("compression = %v, want 2 (8 channels / 4 kept)", got)
	}
}

func TestSlimmingBadFractionPanics(t *testing.T) {
	net, _ := buildBNNet()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSlimming(net, 1e-4, 1.0)
}

func TestFactories(t *testing.T) {
	var std LayerFactory = Standard{}
	var vd LayerFactory = Variational{}
	if _, ok := std.Linear("f/a", 1, 2, 2).(*nn.Linear); !ok {
		t.Fatal("Standard.Linear type")
	}
	if _, ok := vd.Linear("f/b", 1, 2, 2).(*VDLinear); !ok {
		t.Fatal("Variational.Linear type")
	}
	if _, ok := std.Conv2DNoBias("f/c", 1, 1, 1, 3, 1, 1).(*nn.Conv2D); !ok {
		t.Fatal("Standard.Conv2DNoBias type")
	}
	if _, ok := vd.Conv2D("f/d", 1, 1, 1, 3, 1, 1).(*VDConv2D); !ok {
		t.Fatal("Variational.Conv2D type")
	}
}
