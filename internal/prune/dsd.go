package prune

import (
	"fmt"

	"dropback/internal/nn"
)

// DSD implements dense-sparse-dense training (Han et al. 2017), the
// regularization technique §2.2 of the paper explicitly contrasts DropBack
// with: "DSD repeatedly alternates sparse phases (where the lowest-
// absolute-value weights are deleted) and dense refinement phases (where
// all weights may be updated)". Unlike DropBack it trains the full dense
// network first, needs dense weight memory throughout, and uses sparsity
// only as a regularizer — the final model is dense.
type DSD struct {
	set *nn.ParamSet
	// SparseFraction is the share of weights masked to zero during sparse
	// phases (DSD's paper uses 30–50%).
	SparseFraction float64
	// phase tracks whether a sparse phase is active.
	sparse bool
	mask   []bool // keep-mask during sparse phases
	scores []float32
}

// NewDSD builds a dense-sparse-dense scheduler over the parameter set.
func NewDSD(set *nn.ParamSet, sparseFraction float64) *DSD {
	if sparseFraction <= 0 || sparseFraction >= 1 {
		panic(fmt.Sprintf("prune: DSD sparse fraction %v out of (0,1)", sparseFraction))
	}
	n := set.Total()
	return &DSD{
		set:            set,
		SparseFraction: sparseFraction,
		mask:           make([]bool, n),
		scores:         make([]float32, n),
	}
}

// Sparse reports whether a sparse phase is active.
func (d *DSD) Sparse() bool { return d.sparse }

// BeginSparsePhase selects the keep-mask (top-|w| by magnitude, like DSD's
// pruning step) and zeroes the masked weights. Subsequent AfterStep calls
// keep them at zero until EndSparsePhase.
func (d *DSD) BeginSparsePhase() {
	keep := int(float64(d.set.Total()) * (1 - d.SparseFraction))
	if keep < 1 {
		keep = 1
	}
	for i, p := range d.set.Params() {
		base := d.set.Offset(i)
		for e, v := range p.Value.Data {
			if v < 0 {
				v = -v
			}
			d.scores[base+e] = v
		}
	}
	selectTopKInto(d.mask, d.scores, keep)
	d.applyMask()
	d.sparse = true
}

// EndSparsePhase releases the mask: all weights may be updated again (the
// "dense refinement" phase). Masked weights resume from zero.
func (d *DSD) EndSparsePhase() { d.sparse = false }

// AfterStep re-applies the sparse mask after an optimizer step; a no-op in
// dense phases.
func (d *DSD) AfterStep() {
	if d.sparse {
		d.applyMask()
	}
}

func (d *DSD) applyMask() {
	for i, p := range d.set.Params() {
		base := d.set.Offset(i)
		for e := range p.Value.Data {
			if !d.mask[base+e] {
				p.Value.Data[e] = 0
			}
		}
	}
}

// CompressionRatio is always 1: DSD's final model is dense (its sparsity is
// a transient regularizer, not a storage saving) — the paper's §2.2 point.
func (d *DSD) CompressionRatio() float64 { return 1 }

// MaskedCount returns how many weights the current mask suppresses (0 in
// dense phases).
func (d *DSD) MaskedCount() int {
	if !d.sparse {
		return 0
	}
	n := 0
	for _, keep := range d.mask {
		if !keep {
			n++
		}
	}
	return n
}
