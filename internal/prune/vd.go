package prune

import (
	"math"

	"dropback/internal/nn"
	"dropback/internal/tensor"
	"dropback/internal/xorshift"
)

// Variational dropout (Kingma et al. 2015) with the per-parameter dropout
// rates of Molchanov et al. 2017: each weight is w = θ·(1 + √α·ε) with
// ε ~ N(0,1) sampled per training step, and α = exp(logα) learned through
// the reparameterized gradient plus an approximate KL penalty that drives
// many logα large. Weights whose logα exceeds a threshold carry almost pure
// noise and are pruned (treated as zero) at inference.
//
// The paper uses this technique as the "can sparsify during training"
// baseline and reports that it works on VGG-S but fails to converge on
// Densenet and WRN; §4 attributes this to VD drastically altering the loss
// surface, which shows up as a much faster L2 diffusion in Fig 5.

// vdKL constants from Molchanov et al. 2017's approximation of the negative
// KL divergence: −DKL ≈ k1·σ(k2 + k3·logα) − 0.5·log(1 + α⁻¹) + C.
const (
	vdK1 = 0.63576
	vdK2 = 1.87320
	vdK3 = 1.48695
)

// vdKLAndGrad returns DKL (up to a constant) and dDKL/dlogα for one weight.
func vdKLAndGrad(logAlpha float64) (kl, grad float64) {
	z := vdK2 + vdK3*logAlpha
	sig := 1 / (1 + math.Exp(-z))
	alpha := math.Exp(logAlpha)
	negKL := vdK1*sig - 0.5*math.Log1p(1/alpha)
	// d(−DKL)/dlogα = k1·k3·σ(z)(1−σ(z)) + 0.5/(1+α)
	dNeg := vdK1*vdK3*sig*(1-sig) + 0.5/(1+alpha)
	return -negKL, -dNeg
}

// vdNoise owns the θ/logα parameter pair and the per-step noise state that
// both VD layer types share.
type vdNoise struct {
	Theta    *nn.Param
	LogAlpha *nn.Param
	rng      *xorshift.State64
	eps      []float32 // noise sampled in the latest training forward
	noisy    []float32 // effective noisy weights of the latest forward
}

func newVDNoise(theta, logAlpha *nn.Param, seed uint64) *vdNoise {
	return &vdNoise{
		Theta:    theta,
		LogAlpha: logAlpha,
		rng:      xorshift.NewState64(seed),
		eps:      make([]float32, theta.Len()),
		noisy:    make([]float32, theta.Len()),
	}
}

// sampleNoisy fills v.noisy with θ·(1+√α·ε) for a training step, or the
// deterministic θ masked by the pruning threshold for inference.
func (v *vdNoise) sampleNoisy(train bool, pruneThreshold float32) {
	if train {
		for i := range v.noisy {
			e := float32(v.rng.NormFloat64())
			v.eps[i] = e
			sa := float32(math.Exp(0.5 * float64(v.LogAlpha.Value.Data[i])))
			v.noisy[i] = v.Theta.Value.Data[i] * (1 + sa*e)
		}
		return
	}
	for i := range v.noisy {
		if v.LogAlpha.Value.Data[i] > pruneThreshold {
			v.noisy[i] = 0
		} else {
			v.noisy[i] = v.Theta.Value.Data[i]
		}
	}
}

// accumulateGrads folds the gradient with respect to the noisy weights back
// into θ and logα gradients.
func (v *vdNoise) accumulateGrads(dNoisy []float32) {
	for i, g := range dNoisy {
		sa := float32(math.Exp(0.5 * float64(v.LogAlpha.Value.Data[i])))
		e := v.eps[i]
		v.Theta.Grad.Data[i] += g * (1 + sa*e)
		// d noisy/d logα = θ·ε·(1/2)·√α
		v.LogAlpha.Grad.Data[i] += g * v.Theta.Value.Data[i] * e * 0.5 * sa
	}
}

// addKLGrads adds scale·dDKL/dlogα to the logα gradients and returns the
// summed scaled KL value.
func (v *vdNoise) addKLGrads(scale float32) float64 {
	var total float64
	for i := range v.LogAlpha.Value.Data {
		kl, grad := vdKLAndGrad(float64(v.LogAlpha.Value.Data[i]))
		total += float64(scale) * kl
		v.LogAlpha.Grad.Data[i] += scale * float32(grad)
	}
	return total
}

// clamp bounds logα to [-10, 4] for numerical stability, as is standard in
// sparse-VD implementations.
func (v *vdNoise) clamp() {
	for i, a := range v.LogAlpha.Value.Data {
		if a < -10 {
			v.LogAlpha.Value.Data[i] = -10
		} else if a > 4 {
			v.LogAlpha.Value.Data[i] = 4
		}
	}
}

// sparsity returns (pruned, total) weight counts at the given threshold.
func (v *vdNoise) sparsity(threshold float32) (pruned, total int) {
	for _, a := range v.LogAlpha.Value.Data {
		if a > threshold {
			pruned++
		}
	}
	return pruned, v.LogAlpha.Len()
}

// VDLinear is a fully connected layer with variational-dropout weights.
type VDLinear struct {
	name    string
	In, Out int
	noise   *vdNoise
	B       *nn.Param
	x       *tensor.Tensor
	// PruneThreshold is the logα above which a weight is dropped at
	// inference (Molchanov et al. use 3).
	PruneThreshold float32
}

// NewVDLinear builds a variational-dropout fully connected layer.
func NewVDLinear(name string, modelSeed uint64, in, out int) *VDLinear {
	theta := nn.NewParam(name+"/theta", modelSeed, xorshift.InitScaledNormal, xorshift.LeCunScale(in), out, in)
	logA := nn.NewParam(name+"/logalpha", modelSeed, xorshift.InitConstant, -8, out, in)
	return &VDLinear{
		name: name, In: in, Out: out,
		noise:          newVDNoise(theta, logA, xorshift.TensorSeed(modelSeed, nn.NameID(name+"/noise"))),
		B:              nn.NewParam(name+"/b", modelSeed, xorshift.InitZero, 0, out),
		PruneThreshold: 3,
	}
}

// Name implements nn.Layer.
func (l *VDLinear) Name() string { return l.name }

// Forward implements nn.Layer.
func (l *VDLinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	l.noise.sampleNoisy(train, l.PruneThreshold)
	w := tensor.FromSlice(l.noise.noisy, l.Out, l.In)
	y := tensor.MatMulTransB(x, w)
	tensor.AddRowVector(y, l.B.Value)
	return y
}

// Backward implements nn.Layer.
func (l *VDLinear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dW := tensor.MatMulTransA(dy, l.x)
	l.noise.accumulateGrads(dW.Data)
	tensor.AddInPlace(l.B.Grad, tensor.ColSums(dy))
	w := tensor.FromSlice(l.noise.noisy, l.Out, l.In)
	return tensor.MatMul(dy, w)
}

// Params implements nn.Layer.
func (l *VDLinear) Params() []*nn.Param {
	return []*nn.Param{l.noise.Theta, l.noise.LogAlpha, l.B}
}

// VDConv2D is a 2-D convolution with variational-dropout weights.
type VDConv2D struct {
	name           string
	InC, OutC      int
	K, Stride, Pad int
	noise          *vdNoise
	B              *nn.Param
	cols           []*tensor.Tensor
	inShape        []int
	outH, outW     int
	PruneThreshold float32
}

// NewVDConv2D builds a variational-dropout convolution layer.
func NewVDConv2D(name string, modelSeed uint64, inC, outC, k, stride, pad int) *VDConv2D {
	fanIn := inC * k * k
	theta := nn.NewParam(name+"/theta", modelSeed, xorshift.InitScaledNormal, xorshift.HeScale(fanIn), outC, inC, k, k)
	logA := nn.NewParam(name+"/logalpha", modelSeed, xorshift.InitConstant, -8, outC, inC, k, k)
	return &VDConv2D{
		name: name, InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		noise:          newVDNoise(theta, logA, xorshift.TensorSeed(modelSeed, nn.NameID(name+"/noise"))),
		B:              nn.NewParam(name+"/b", modelSeed, xorshift.InitZero, 0, outC),
		PruneThreshold: 3,
	}
}

// Name implements nn.Layer.
func (l *VDConv2D) Name() string { return l.name }

// Forward implements nn.Layer.
func (l *VDConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	l.inShape = append(l.inShape[:0], x.Shape...)
	l.outH = tensor.ConvOutSize(h, l.K, l.Stride, l.Pad)
	l.outW = tensor.ConvOutSize(w, l.K, l.Stride, l.Pad)
	l.noise.sampleNoisy(train, l.PruneThreshold)
	wm := tensor.FromSlice(l.noise.noisy, l.OutC, l.InC*l.K*l.K)
	y := tensor.New(n, l.OutC, l.outH, l.outW)
	l.cols = l.cols[:0]
	perSample := l.OutC * l.outH * l.outW
	for i := 0; i < n; i++ {
		img := tensor.FromSlice(x.Data[i*l.InC*h*w:(i+1)*l.InC*h*w], l.InC, h, w)
		cols := tensor.Im2Col(img, l.K, l.K, l.Stride, l.Pad)
		l.cols = append(l.cols, cols)
		ym := tensor.MatMul(wm, cols)
		copy(y.Data[i*perSample:(i+1)*perSample], ym.Data)
	}
	for i := 0; i < n; i++ {
		for f := 0; f < l.OutC; f++ {
			b := l.B.Value.Data[f]
			base := (i*l.OutC + f) * l.outH * l.outW
			plane := y.Data[base : base+l.outH*l.outW]
			for j := range plane {
				plane[j] += b
			}
		}
	}
	return y
}

// Backward implements nn.Layer.
func (l *VDConv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := l.inShape[0]
	h, w := l.inShape[2], l.inShape[3]
	wm := tensor.FromSlice(l.noise.noisy, l.OutC, l.InC*l.K*l.K)
	dWm := tensor.New(l.OutC, l.InC*l.K*l.K)
	dx := tensor.New(l.inShape...)
	spatial := l.outH * l.outW
	for i := 0; i < n; i++ {
		dyM := tensor.FromSlice(dy.Data[i*l.OutC*spatial:(i+1)*l.OutC*spatial], l.OutC, spatial)
		tensor.AddInPlace(dWm, tensor.MatMulTransB(dyM, l.cols[i]))
		for f := 0; f < l.OutC; f++ {
			var s float64
			row := dyM.Data[f*spatial : (f+1)*spatial]
			for _, v := range row {
				s += float64(v)
			}
			l.B.Grad.Data[f] += float32(s)
		}
		dcols := tensor.MatMulTransA(wm, dyM)
		dimg := tensor.Col2Im(dcols, l.InC, h, w, l.K, l.K, l.Stride, l.Pad)
		copy(dx.Data[i*l.InC*h*w:(i+1)*l.InC*h*w], dimg.Data)
	}
	l.noise.accumulateGrads(dWm.Data)
	return dx
}

// Params implements nn.Layer.
func (l *VDConv2D) Params() []*nn.Param {
	return []*nn.Param{l.noise.Theta, l.noise.LogAlpha, l.B}
}

// vdLayer is the coordination surface the VD controller needs.
type vdLayer interface {
	klNoise() *vdNoise
	threshold() float32
}

func (l *VDLinear) klNoise() *vdNoise  { return l.noise }
func (l *VDLinear) threshold() float32 { return l.PruneThreshold }
func (l *VDConv2D) klNoise() *vdNoise  { return l.noise }
func (l *VDConv2D) threshold() float32 { return l.PruneThreshold }

// VD coordinates the variational-dropout layers of a model: it injects the
// KL gradients before each optimizer step, clamps logα after it, and
// reports the achieved sparsity.
type VD struct {
	layers []vdLayer
	// KLScale multiplies the KL penalty (1/dataset-size in the ELBO).
	KLScale float32
	// LastKL is the KL term of the most recent AddKLGrads call.
	LastKL float64
}

// NewVD collects every VD layer found in the (possibly nested) layer tree.
func NewVD(root nn.Layer, klScale float32) *VD {
	v := &VD{KLScale: klScale}
	nn.Walk(root, func(l nn.Layer) {
		if t, ok := l.(vdLayer); ok {
			v.layers = append(v.layers, t)
		}
	})
	return v
}

// LayerCount returns the number of VD layers under coordination.
func (v *VD) LayerCount() int { return len(v.layers) }

// AddKLGrads injects the KL gradient into every VD layer's logα gradient
// buffer; call between Model.Step and the optimizer step.
func (v *VD) AddKLGrads() float64 {
	var total float64
	for _, l := range v.layers {
		total += l.klNoise().addKLGrads(v.KLScale)
	}
	v.LastKL = total
	return total
}

// AfterStep clamps logα in every layer.
func (v *VD) AfterStep() {
	for _, l := range v.layers {
		l.klNoise().clamp()
	}
}

// Sparsity returns the pruned and total weight counts across all VD layers.
func (v *VD) Sparsity() (pruned, total int) {
	for _, l := range v.layers {
		p, t := l.klNoise().sparsity(l.threshold())
		pruned += p
		total += t
	}
	return pruned, total
}

// CompressionRatio returns total/(total−pruned); 1.0 when nothing is pruned.
func (v *VD) CompressionRatio() float64 {
	pruned, total := v.Sparsity()
	kept := total - pruned
	if kept <= 0 {
		return float64(total)
	}
	return float64(total) / float64(kept)
}
