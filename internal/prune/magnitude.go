// Package prune implements the three comparison baselines evaluated in the
// paper's §3: iterative magnitude-based pruning, variational dropout
// (Kingma et al. 2015, with the Molchanov et al. 2017 sparsification), and
// network slimming (Liu et al. 2017).
//
// The baselines differ from DropBack in exactly the ways the paper's
// analysis (§4) highlights: magnitude pruning zeroes weights (destroying
// the initialization "scaffolding", so its L2 diffusion starts displaced),
// variational dropout perturbs the loss surface (diffusing much faster and
// failing to converge on dense networks), and network slimming requires a
// full train-prune-retrain cycle with dense training-time memory traffic.
package prune

import (
	"fmt"

	"dropback/internal/nn"
)

// Magnitude is the paper's "straightforward magnitude-based pruning
// implementation where only the highest weights are kept after each
// iteration": after every SGD update, all but the top keep-fraction of
// weights by absolute value are set to zero (not regenerated — zeroing is
// the point of contrast with DropBack).
type Magnitude struct {
	set *nn.ParamSet
	// PruneFraction is the fraction of weights zeroed each iteration; the
	// paper's "Mag Pruning .75" rows correspond to PruneFraction = 0.75.
	PruneFraction float64

	keep   int
	scores []float32
	mask   []bool
	zeroed int64
}

// NewMagnitude builds an iterative magnitude pruner keeping the top
// (1−pruneFraction) of weights by |w| each step.
func NewMagnitude(set *nn.ParamSet, pruneFraction float64) *Magnitude {
	if pruneFraction < 0 || pruneFraction >= 1 {
		panic(fmt.Sprintf("prune: prune fraction %v out of [0,1)", pruneFraction))
	}
	n := set.Total()
	keep := int(float64(n) * (1 - pruneFraction))
	if keep < 1 {
		keep = 1
	}
	return &Magnitude{
		set:           set,
		PruneFraction: pruneFraction,
		keep:          keep,
		scores:        make([]float32, n),
		mask:          make([]bool, n),
	}
}

// Keep returns the number of weights preserved each iteration.
func (m *Magnitude) Keep() int { return m.keep }

// CompressionRatio returns total/kept weights.
func (m *Magnitude) CompressionRatio() float64 {
	return float64(m.set.Total()) / float64(m.keep)
}

// Apply zeroes all but the top-|w| weights. It uses the same deterministic
// top-k selection as DropBack, but scored by current magnitude rather than
// accumulated gradient, and resets losers to zero rather than to their
// regenerated initialization values.
func (m *Magnitude) Apply() {
	for i, p := range m.set.Params() {
		base := m.set.Offset(i)
		for e, v := range p.Value.Data {
			if v < 0 {
				v = -v
			}
			m.scores[base+e] = v
		}
	}
	selectTopKInto(m.mask, m.scores, m.keep)
	for i, p := range m.set.Params() {
		base := m.set.Offset(i)
		for e := range p.Value.Data {
			if !m.mask[base+e] && p.Value.Data[e] != 0 {
				p.Value.Data[e] = 0
				m.zeroed++
			}
		}
	}
}

// Zeroed returns the cumulative number of weight-zeroing writes performed.
func (m *Magnitude) Zeroed() int64 { return m.zeroed }

// Mask returns a copy of the latest keep-mask.
func (m *Magnitude) Mask() []bool {
	out := make([]bool, len(m.mask))
	copy(out, m.mask)
	return out
}

// selectTopKInto mirrors core.SelectTopKInto (quickselect with
// deterministic tie-breaking) without importing the core package, keeping
// the baseline self-contained the way an independent implementation would
// be.
func selectTopKInto(mask []bool, scores []float32, k int) {
	for i := range mask {
		mask[i] = false
	}
	if k <= 0 {
		return
	}
	if k >= len(scores) {
		for i := range mask {
			mask[i] = true
		}
		return
	}
	buf := make([]float32, len(scores))
	copy(buf, scores)
	target := len(buf) - k
	lo, hi := 0, len(buf)-1
	for lo < hi {
		// Three-way partitioning: magnitude score vectors carry huge runs
		// of exact zeros (previously pruned weights), which would degrade
		// a two-way quickselect to O(n²).
		ltEnd, gtStart := partition3(buf, lo, hi)
		switch {
		case target < ltEnd:
			hi = ltEnd - 1
		case target >= gtStart:
			lo = gtStart
		default:
			lo, hi = target, target
		}
	}
	thresh := buf[target]
	count := 0
	for i, s := range scores {
		if s > thresh {
			mask[i] = true
			count++
		}
	}
	for i, s := range scores {
		if count == k {
			break
		}
		if s == thresh && !mask[i] {
			mask[i] = true
			count++
		}
	}
}

// partition3 partitions a[lo..hi] into (< pivot | == pivot | > pivot) with
// a median-of-three pivot, returning (ltEnd, gtStart): the equal run
// occupies a[ltEnd:gtStart].
func partition3(a []float32, lo, hi int) (ltEnd, gtStart int) {
	mid := lo + (hi-lo)/2
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	lt, i, gt := lo, lo, hi
	for i <= gt {
		switch {
		case a[i] < pivot:
			a[lt], a[i] = a[i], a[lt]
			lt++
			i++
		case a[i] > pivot:
			a[i], a[gt] = a[gt], a[i]
			gt--
		default:
			i++
		}
	}
	return lt, gt + 1
}
