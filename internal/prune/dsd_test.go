package prune

import (
	"testing"

	"dropback/internal/nn"
	"dropback/internal/optim"
	"dropback/internal/tensor"
	"dropback/internal/xorshift"
)

func dsdSet() (*nn.ParamSet, *nn.Linear) {
	fc := nn.NewLinear("dsd/fc", 21, 6, 4) // 28 params
	return nn.NewParamSet(fc), fc
}

func TestDSDSparsePhaseMasksLowest(t *testing.T) {
	set, _ := dsdSet()
	for g := 0; g < set.Total(); g++ {
		set.Set(g, float32(g)) // magnitude == index
	}
	d := NewDSD(set, 0.5)
	d.BeginSparsePhase()
	if !d.Sparse() {
		t.Fatal("sparse phase not active")
	}
	// Bottom half zeroed, top half kept.
	for g := 0; g < set.Total(); g++ {
		v := set.Get(g)
		if g < set.Total()/2 && v != 0 {
			t.Fatalf("low-|w| weight %d = %v, want 0", g, v)
		}
		if g >= set.Total()/2 && v == 0 {
			t.Fatalf("high-|w| weight %d zeroed", g)
		}
	}
	if d.MaskedCount() != set.Total()/2 {
		t.Fatalf("masked %d, want %d", d.MaskedCount(), set.Total()/2)
	}
}

func TestDSDAfterStepKeepsMaskInSparsePhase(t *testing.T) {
	set, _ := dsdSet()
	for g := 0; g < set.Total(); g++ {
		set.Set(g, float32(g))
	}
	d := NewDSD(set, 0.5)
	d.BeginSparsePhase()
	set.Set(0, 99) // optimizer "revives" a masked weight
	d.AfterStep()
	if set.Get(0) != 0 {
		t.Fatal("masked weight must stay zero during the sparse phase")
	}
}

func TestDSDDensePhaseReleasesMask(t *testing.T) {
	set, _ := dsdSet()
	for g := 0; g < set.Total(); g++ {
		set.Set(g, float32(g))
	}
	d := NewDSD(set, 0.5)
	d.BeginSparsePhase()
	d.EndSparsePhase()
	set.Set(0, 99)
	d.AfterStep()
	if set.Get(0) != 99 {
		t.Fatal("dense phase must not reapply the mask")
	}
	if d.MaskedCount() != 0 {
		t.Fatal("dense phase reports no masked weights")
	}
}

func TestDSDCompressionIsOne(t *testing.T) {
	set, _ := dsdSet()
	d := NewDSD(set, 0.3)
	if d.CompressionRatio() != 1 {
		t.Fatal("DSD's final model is dense: compression must be 1 (the §2.2 contrast)")
	}
}

func TestDSDBadFractionPanics(t *testing.T) {
	set, _ := dsdSet()
	for _, f := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for fraction %v", f)
				}
			}()
			NewDSD(set, f)
		}()
	}
}

func TestDSDTrainingCycleLearns(t *testing.T) {
	// Dense -> sparse -> dense cycle on a toy task must still fit it.
	net := nn.NewSequential("dsdt",
		nn.NewLinear("dsdt/fc1", 33, 2, 12),
		nn.NewReLU("dsdt/r"),
		nn.NewLinear("dsdt/fc2", 33, 12, 2),
	)
	m := nn.NewModel(net, 33)
	d := NewDSD(m.Set, 0.3)
	x := tensor.New(16, 2)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 2
		x.Set(1+0.1*xorshift.IndexedNormal(1, uint64(i)), i, i%2)
	}
	sgd := optim.NewSGD(0.3)
	phase := func(steps int) {
		for s := 0; s < steps; s++ {
			m.Step(x, labels)
			sgd.Step(m.Set)
			d.AfterStep()
		}
	}
	phase(100) // dense
	d.BeginSparsePhase()
	phase(100) // sparse
	d.EndSparsePhase()
	phase(100) // dense refinement
	if _, acc := m.Eval(x, labels); acc != 1 {
		t.Fatalf("DSD cycle failed to fit the toy task (acc %v)", acc)
	}
}
