package prune

import (
	"math"
	"testing"

	"dropback/internal/nn"
	"dropback/internal/optim"
	"dropback/internal/xorshift"
)

// TestMagnitudeApplyAfterPostReduceStep pins the constraint half of the
// one-shot post-reduce contract: after the data-parallel executor reduces
// per-sample gradient rows and the optimizer steps once, the pruning
// constraint also applies exactly once — and the result is bitwise
// identical to the sequential path that accumulated the same rows one
// sample at a time. Mask selection depends only on the post-step weights,
// so the two paths must agree on the surviving set too.
func TestMagnitudeApplyAfterPostReduceStep(t *testing.T) {
	const rows = 4
	build := func() (*nn.ParamSet, []float32) {
		net := nn.NewSequential("pp",
			nn.NewLinear("pp/fc1", 31, 6, 8),
			nn.NewLinear("pp/fc2", 31, 8, 4),
		)
		set := nn.NewParamSet(net)
		slab := make([]float32, rows*set.Total())
		for i := range slab {
			slab[i] = xorshift.IndexedNormal(0xF00D, uint64(i))
		}
		return set, slab
	}

	seqSet, slab := build()
	redSet, _ := build()
	total := seqSet.Total()

	// Sequential reference: ascending per-sample accumulation, one step,
	// one constraint application.
	for s := 0; s < rows; s++ {
		row := slab[s*total : (s+1)*total]
		for i, p := range seqSet.Params() {
			off := seqSet.Offset(i)
			for j := range p.Grad.Data {
				p.Grad.Data[j] += row[off+j]
			}
		}
	}
	optim.NewSGD(0.05).Step(seqSet)
	seqPrune := NewMagnitude(seqSet, 0.5)
	seqPrune.Apply()

	// Post-reduce path: slab reduction, one step, one application.
	redSet.ReduceGradSlab(slab, rows)
	optim.NewSGD(0.05).Step(redSet)
	redPrune := NewMagnitude(redSet, 0.5)
	redPrune.Apply()

	seq, red := seqSet.Snapshot(), redSet.Snapshot()
	for g := range seq {
		if math.Float32bits(seq[g]) != math.Float32bits(red[g]) {
			t.Fatalf("weight %d differs after post-reduce prune: %v vs %v", g, red[g], seq[g])
		}
	}
	seqMask, redMask := seqPrune.Mask(), redPrune.Mask()
	for g := range seqMask {
		if seqMask[g] != redMask[g] {
			t.Fatalf("prune mask %d differs between sequential and post-reduce paths", g)
		}
	}
	if seqPrune.Zeroed() != redPrune.Zeroed() {
		t.Fatalf("zeroed counts differ: %d vs %d", seqPrune.Zeroed(), redPrune.Zeroed())
	}
}
