package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	for _, content := range []string{"first", "second longer content"} {
		err := WriteFile(path, nil, func(w io.Writer) error {
			_, err := w.Write([]byte(content))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temporary file left behind: %v", err)
	}
}

func TestWriteFileErrorLeavesOldFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFile(path, nil, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, nil, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("old content clobbered: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temporary file left behind after failure: %v", err)
	}
}

func TestWriteFileWrapSeesBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	var seen int
	wrap := func(w io.Writer) io.Writer {
		return writerFunc(func(p []byte) (int, error) {
			seen += len(p)
			return w.Write(p)
		})
	}
	if err := WriteFile(path, wrap, func(w io.Writer) error {
		_, err := w.Write(make([]byte, 1234))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 1234 {
		t.Fatalf("wrap saw %d bytes, want 1234", seen)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
