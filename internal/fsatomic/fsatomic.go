// Package fsatomic writes files crash-safely: content goes to a temporary
// sibling first, is flushed to stable storage with fsync, and only then
// renamed over the final path. A crash at any byte of the write leaves the
// previous file (or no file) at the final path — never a torn one. Both the
// dense checkpoint writer and the sparse artifact exporter build on it.
package fsatomic

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WrapWriter optionally interposes on the file writer during WriteFile —
// the seam the fault-injection harness uses to simulate crashes at a chosen
// byte offset. A nil wrap is identity.
type WrapWriter func(io.Writer) io.Writer

// WriteFile atomically replaces path with the bytes produced by write.
//
// The sequence is: create path+".tmp", stream write() into it (through wrap,
// if given), fsync the file, close it, rename over path, then best-effort
// fsync the parent directory so the rename itself is durable. On any error
// the temporary file is removed and the final path is left untouched.
func WriteFile(path string, wrap WrapWriter, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var w io.Writer = f
	if wrap != nil {
		w = wrap(f)
	}
	if err := write(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsatomic: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-completed rename survives power loss.
// Errors are ignored: not every platform or filesystem supports it, and the
// rename has already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
