module dropback

go 1.22
