#!/usr/bin/env bash
# Multi-node training end-to-end test over real processes and real sockets,
# run by CI's dist-e2e job and `make dist-e2e`:
#
#   1. train a DropBack model sequentially and save a dense checkpoint;
#   2. train the identical configuration as a 2-process cluster on loopback
#      TCP (two OS processes, a real mesh, real frames — not the in-process
#      loopback the unit suite uses), each node saving its checkpoint;
#   3. require every node's checkpoint to be byte-identical to the
#      sequential one — the tentpole bit-identity claim, end to end;
#   4. rerun with the tracked set frozen from epoch 0 so the exchange runs
#      in its O(k) phase, and require byte-identity again.
#
# The CLI processes build their synthetic dataset from -samples/-seed, so
# every process sees identical data with no files to distribute.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
NODE1_PID=""
cleanup() {
    [ -n "$NODE1_PID" ] && kill "$NODE1_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "==> building cmd/dropback"
go build -o "$TMP/dropback" ./cmd/dropback

# PID-derived ports keep concurrent CI jobs on the same host from colliding.
P0=$((20000 + $$ % 20000))
P1=$((P0 + 1))
PEERS="127.0.0.1:$P0,127.0.0.1:$P1"

run_case() {
    name="$1"; shift
    echo "==> [$name] sequential reference"
    "$TMP/dropback" "$@" -save-checkpoint "$TMP/$name-seq.ckpt" >"$TMP/$name-seq.log"

    echo "==> [$name] 2-process cluster on $PEERS"
    "$TMP/dropback" "$@" -dist-rank 1 -dist-peers "$PEERS" \
        -save-checkpoint "$TMP/$name-node1.ckpt" >"$TMP/$name-node1.log" 2>&1 &
    NODE1_PID=$!
    "$TMP/dropback" "$@" -dist-rank 0 -dist-peers "$PEERS" \
        -save-checkpoint "$TMP/$name-node0.ckpt" >"$TMP/$name-node0.log"
    wait "$NODE1_PID"
    NODE1_PID=""

    echo "==> [$name] checkpoints must be byte-identical to the sequential run"
    cmp "$TMP/$name-seq.ckpt" "$TMP/$name-node0.ckpt"
    cmp "$TMP/$name-seq.ckpt" "$TMP/$name-node1.ckpt"
    echo "==> [$name] OK ($(wc -c <"$TMP/$name-seq.ckpt") byte checkpoint)"
}

COMMON=(-model mnist100 -method dropback -budget 10000 -epochs 2 -samples 400 -batch 32 -seed 11)

# Dense-exchange phase: the tracked set is live, full gradient rows cross.
run_case dense "${COMMON[@]}"

# Frozen O(k) phase: the set freezes after epoch 0, so epoch 1 exchanges
# k-value frames.
run_case frozen "${COMMON[@]}" -freeze 0

echo "==> dist e2e passed"
