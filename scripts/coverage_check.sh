#!/usr/bin/env sh
# Repo-wide statement-coverage check against a committed floor.
#
# ENFORCING: a drop below the floor fails the build (and leaves a note in
# the GitHub step summary when running in Actions). The floor sits a few
# points under measured coverage so profile noise across Go versions cannot
# flake it; raise it when coverage grows so the gate stays close to reality.
set -eu

# Minimum acceptable total statement coverage, in percent. Measured 78.2%
# when committed — the floor leaves a little room for coverage-profile
# noise across Go versions while still flagging real erosion.
FLOOR=75.0

cd "$(dirname "$0")/.."

profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" ./... > /dev/null

total="$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')"
if [ -z "$total" ]; then
    echo "coverage_check: could not extract total coverage" >&2
    exit 1
fi

echo "coverage_check: total statement coverage ${total}% (floor ${FLOOR}%)"

below="$(awk -v t="$total" -v f="$FLOOR" 'BEGIN { print (t < f) ? 1 : 0 }')"
if [ "$below" = "1" ]; then
    echo "coverage_check: FAIL: coverage ${total}% is below the ${FLOOR}% floor" >&2
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        echo "❌ Coverage **${total}%** is below the committed floor of **${FLOOR}%**." >> "$GITHUB_STEP_SUMMARY"
    fi
    exit 1
fi
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    echo "Coverage **${total}%** (floor ${FLOOR}%)." >> "$GITHUB_STEP_SUMMARY"
fi

exit 0
