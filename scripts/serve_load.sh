#!/usr/bin/env bash
# Serving performance gate, run by CI and `make serve-load`:
#
#   1. BenchmarkServePredict (go test) — the request-path alloc ceiling;
#   2. an open-loop load run: dropback-loadgen offers 2x a capacity-limited
#      server's throughput (-slow-replica pins service time) with a mixed
#      interactive/batch/best-effort tier split;
#   3. cmd/benchguard checks both against BENCH_serve.json: per-request
#      allocs, interactive p50/p99 ceilings, the interactive shed budget,
#      and — via -assert-faster — that shedding lands on best-effort
#      strictly before interactive (graceful degradation, measured).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SERVE_LOAD_ADDR:-127.0.0.1:18081}"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "==> request-path micro-benchmark (BenchmarkServePredict)"
go test -bench BenchmarkServePredict -benchmem -benchtime 50x \
    -run '^$' ./internal/serve | tee "$TMP/bench.out"

echo "==> training a tiny artifact"
go run ./cmd/dropback -model mnist100 -method dropback -budget 10000 \
    -epochs 1 -samples 400 -seed 1 -export-sparse "$TMP/model.dbsp"

echo "==> starting a capacity-limited server (~20 rps: 1 replica x 50ms)"
go build -o "$TMP/dropback-serve" ./cmd/dropback-serve
go build -o "$TMP/dropback-loadgen" ./cmd/dropback-loadgen
"$TMP/dropback-serve" -artifact "$TMP/model.dbsp" -model mnist100 -seed 1 \
    -addr "$ADDR" -replicas 1 -max-batch 1 -queue 8 -timeout 10s \
    -slow-replica 50ms >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "server exited early:"; cat "$TMP/serve.log"; exit 1
    fi
    sleep 0.2
done
curl -sf "http://$ADDR/readyz" >/dev/null || { echo "server never became ready"; cat "$TMP/serve.log"; exit 1; }

echo "==> open-loop overload: 40 rps offered against ~20 rps capacity"
"$TMP/dropback-loadgen" -url "http://$ADDR" -rps 40 -duration 5s \
    -tiers "interactive=1,batch=1,best-effort=2" -input-len 784 -seed 1 \
    -json "$TMP/load_report.json" -bench | tee -a "$TMP/bench.out"

kill -TERM "$SERVE_PID"
EXIT_CODE=0
wait "$SERVE_PID" || EXIT_CODE=$?
SERVE_PID=""
if [ "$EXIT_CODE" -ne 0 ]; then
    echo "server exited $EXIT_CODE on SIGTERM, want 0:"; cat "$TMP/serve.log"; exit 1
fi

echo "==> gating per-tier curves against BENCH_serve.json"
go run ./cmd/benchguard -baseline BENCH_serve.json -input "$TMP/bench.out" \
    -assert-faster 'BenchmarkServeLoad/tier=interactive/shed<BenchmarkServeLoad/tier=best-effort/shed'

echo "==> serve load gate OK"
