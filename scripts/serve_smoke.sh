#!/usr/bin/env bash
# End-to-end serving smoke test, run by CI and `make serve-smoke`:
# train briefly -> export the sparse artifact -> start dropback-serve ->
# round-trip a prediction over HTTP -> live-reload to a retrained v2
# artifact with zero downtime (and prove a corrupt artifact is rejected
# with the live version untouched) -> check health/stats endpoints ->
# SIGTERM and require a graceful zero-exit drain. Then repeat the round
# trip against a sparse-native server (-sparse) and require its prediction
# to match the dense server's byte for byte.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:18080}"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "==> training one epoch and exporting the sparse artifact"
go run ./cmd/dropback -model mnist100 -method dropback -budget 10000 \
    -epochs 1 -samples 400 -seed 1 -export-sparse "$TMP/model.dbsp"

echo "==> starting dropback-serve on $ADDR"
go build -o "$TMP/dropback-serve" ./cmd/dropback-serve
"$TMP/dropback-serve" -artifact "$TMP/model.dbsp" -model mnist100 -seed 1 \
    -addr "$ADDR" -replicas 2 -max-batch 4 -timeout 5s \
    -telemetry "$TMP/serve.jsonl" >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

echo "==> waiting for readiness"
for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "server exited early:"; cat "$TMP/serve.log"; exit 1
    fi
    sleep 0.2
done
curl -sf "http://$ADDR/readyz" >/dev/null || { echo "server never became ready"; cat "$TMP/serve.log"; exit 1; }

echo "==> predict round trip"
awk 'BEGIN{
    printf "{\"input\":[";
    for (i = 0; i < 784; i++) printf "%s%.4f", (i ? "," : ""), (i % 13) / 13;
    printf "]}";
}' >"$TMP/payload.json"
RESP="$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @"$TMP/payload.json" "http://$ADDR/v1/predict")"
echo "    $RESP"
case "$RESP" in
    *'"class"'*'"probs"'*) ;;
    *) echo "predict response missing class/probs"; exit 1 ;;
esac

echo "==> malformed input is rejected with 400"
STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d '{"input":[1,2,3]}' "http://$ADDR/v1/predict")"
[ "$STATUS" = "400" ] || { echo "bad input returned $STATUS, want 400"; exit 1; }

echo "==> health and stats"
curl -sf "http://$ADDR/healthz" >/dev/null
STATS="$(curl -sf "http://$ADDR/statsz")"
echo "    $STATS"
case "$STATS" in
    *'"requests":'*) ;;
    *) echo "statsz missing request counters"; exit 1 ;;
esac

echo "==> training a v2 artifact for the live reload"
go run ./cmd/dropback -model mnist100 -method dropback -budget 10000 \
    -epochs 2 -samples 400 -seed 1 -export-sparse "$TMP/model_v2.dbsp"

echo "==> live reload round trip (zero downtime)"
RELOAD="$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d "{\"path\":\"$TMP/model_v2.dbsp\"}" "http://$ADDR/v1/reload")"
echo "    $RELOAD"
case "$RELOAD" in
    *'"version":"v2-'*) ;;
    *) echo "reload did not produce a v2 version"; exit 1 ;;
esac
case "$RELOAD" in
    *'"swapped":true'*) ;;
    *) echo "reload did not swap the new version in for all traffic"; exit 1 ;;
esac
RESP2="$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @"$TMP/payload.json" "http://$ADDR/v1/predict")"
echo "    $RESP2"
case "$RESP2" in
    *'"version":"v2-'*) ;;
    *) echo "prediction still served by the old version after reload"; exit 1 ;;
esac

echo "==> corrupt reload is rejected, live version untouched"
head -c 64 "$TMP/model_v2.dbsp" >"$TMP/torn.dbsp"
STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/octet-stream' \
    --data-binary @"$TMP/torn.dbsp" "http://$ADDR/v1/reload")"
[ "$STATUS" = "422" ] || { echo "torn artifact returned $STATUS, want 422"; exit 1; }
RESP3="$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @"$TMP/payload.json" "http://$ADDR/v1/predict")"
case "$RESP3" in
    *'"version":"v2-'*) ;;
    *) echo "rejected reload disturbed the serving version"; exit 1 ;;
esac
STATS="$(curl -sf "http://$ADDR/statsz")"
case "$STATS" in
    *'"reloads":1'*) ;;
    *) echo "statsz does not record exactly one verified reload: $STATS"; exit 1 ;;
esac

echo "==> graceful drain on SIGTERM"
kill -TERM "$SERVE_PID"
EXIT_CODE=0
wait "$SERVE_PID" || EXIT_CODE=$?
SERVE_PID=""
if [ "$EXIT_CODE" -ne 0 ]; then
    echo "server exited $EXIT_CODE on SIGTERM, want 0:"; cat "$TMP/serve.log"; exit 1
fi
grep -q "shutdown signal received" "$TMP/serve.log" || { echo "no drain log line:"; cat "$TMP/serve.log"; exit 1; }
[ -s "$TMP/serve.jsonl" ] || { echo "telemetry stream is empty (drain lost it?)"; exit 1; }

echo "==> starting sparse-native dropback-serve on $ADDR"
"$TMP/dropback-serve" -artifact "$TMP/model.dbsp" -model mnist100 -seed 1 \
    -addr "$ADDR" -replicas 2 -max-batch 4 -timeout 5s \
    -sparse >"$TMP/sparse.log" 2>&1 &
SERVE_PID=$!

for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "sparse server exited early:"; cat "$TMP/sparse.log"; exit 1
    fi
    sleep 0.2
done
curl -sf "http://$ADDR/readyz" >/dev/null || { echo "sparse server never became ready"; cat "$TMP/sparse.log"; exit 1; }

echo "==> sparse predict matches dense"
SPARSE_RESP="$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data @"$TMP/payload.json" "http://$ADDR/v1/predict")"
echo "    $SPARSE_RESP"
# batch_size depends on request coalescing timing, not the model — strip it.
DENSE_CORE="$(printf '%s' "$RESP" | sed 's/,"batch_size":[0-9]*//')"
SPARSE_CORE="$(printf '%s' "$SPARSE_RESP" | sed 's/,"batch_size":[0-9]*//')"
if [ "$SPARSE_CORE" != "$DENSE_CORE" ]; then
    echo "sparse prediction diverges from dense:"
    echo "  dense:  $DENSE_CORE"
    echo "  sparse: $SPARSE_CORE"
    exit 1
fi

echo "==> sparse statsz reports shared weight bytes"
SPARSE_STATS="$(curl -sf "http://$ADDR/statsz")"
echo "    $SPARSE_STATS"
case "$SPARSE_STATS" in
    *'"shared_weight_bytes":0'*) echo "sparse server reports zero shared weight bytes"; exit 1 ;;
    *'"shared_weight_bytes":'*) ;;
    *) echo "statsz missing shared_weight_bytes"; exit 1 ;;
esac
case "$SPARSE_STATS" in
    *'"weight_bytes_per_replica":0'*) ;;
    *) echo "sparse server should report zero private weight bytes per replica"; exit 1 ;;
esac

echo "==> sparse server graceful drain"
kill -TERM "$SERVE_PID"
EXIT_CODE=0
wait "$SERVE_PID" || EXIT_CODE=$?
SERVE_PID=""
if [ "$EXIT_CODE" -ne 0 ]; then
    echo "sparse server exited $EXIT_CODE on SIGTERM, want 0:"; cat "$TMP/sparse.log"; exit 1
fi

echo "==> serve smoke OK"
