package dropback

import (
	"math"
	"testing"

	"dropback/internal/data"
	"dropback/internal/models"
	"dropback/internal/optim"
	"dropback/internal/prune"
)

// smallData builds a quick synthetic dataset: 14×14 images, flattened.
func smallData(n int, seed uint64) (train, val *Dataset) {
	cfg := data.SynthConfig{
		Classes: 10, Samples: n, Size: 14, Channels: 1,
		Bumps: 5, MaxShift: 1, Noise: 0.1, Seed: seed,
	}
	ds := data.Generate(cfg).Flatten()
	return ds.Split(n * 4 / 5)
}

// smallMLP builds a matching small model.
func smallMLP(seed uint64) *Model {
	return models.ReducedMNISTMLP("t", 14, 32, 32, seed, nil)
}

func quickCfg(method Method) TrainConfig {
	return TrainConfig{
		Method: method, Epochs: 6, BatchSize: 32, Seed: 9,
		Schedule: optim.StepDecay{Initial: 0.2, Factor: 0.5, Every: 3},
	}
}

func TestTrainBaselineLearns(t *testing.T) {
	train, val := smallData(400, 1)
	res := Train(smallMLP(1), train, val, quickCfg(MethodBaseline))
	if res.Diverged {
		t.Fatal("baseline diverged")
	}
	if res.BestValAcc < 0.5 {
		t.Fatalf("baseline val acc = %v, want > 0.5", res.BestValAcc)
	}
	if res.Compression != 1 {
		t.Fatalf("baseline compression = %v, want 1", res.Compression)
	}
	if len(res.History) == 0 || res.BestEpoch == 0 {
		t.Fatal("history/best epoch not recorded")
	}
	if math.Abs(res.BestValErr-(1-res.BestValAcc)) > 1e-12 {
		t.Fatal("BestValErr must be 1 − BestValAcc")
	}
}

func TestTrainDropBackLearnsAndConstrains(t *testing.T) {
	train, val := smallData(400, 2)
	m := smallMLP(2)
	cfg := quickCfg(MethodDropBack)
	cfg.Budget = m.Set.Total() / 4
	cfg.FreezeAfterEpoch = 3
	res := Train(m, train, val, cfg)
	if res.BestValAcc < 0.5 {
		t.Fatalf("dropback val acc = %v, want > 0.5", res.BestValAcc)
	}
	if math.Abs(res.Compression-4) > 0.1 {
		t.Fatalf("compression = %v, want ~4", res.Compression)
	}
	if len(res.SwapHistory) == 0 {
		t.Fatal("DropBack must record swap history")
	}
	if len(res.AccumulatedGradients) != m.Set.Total() {
		t.Fatal("accumulated gradients missing")
	}
	if len(res.Retention) == 0 {
		t.Fatal("retention breakdown missing")
	}
	if res.Regenerations == 0 {
		t.Fatal("regeneration counter missing")
	}
}

func TestTrainDropBackRestoresBestWeightsUnderConstraint(t *testing.T) {
	// After Train returns, the model carries the best-epoch weights; for
	// DropBack those still satisfy the at-most-k-deviations invariant.
	train, val := smallData(300, 3)
	m := smallMLP(3)
	cfg := quickCfg(MethodDropBack)
	cfg.Budget = m.Set.Total() / 5
	res := Train(m, train, val, cfg)
	deviating := 0
	for g := 0; g < m.Set.Total(); g++ {
		if m.Set.Get(g) != m.Set.InitialValue(g) {
			deviating++
		}
	}
	if deviating > cfg.Budget {
		t.Fatalf("%d weights deviate from init, budget is %d", deviating, cfg.Budget)
	}
	_ = res
}

func TestTrainMagnitude(t *testing.T) {
	train, val := smallData(300, 4)
	cfg := quickCfg(MethodMagnitude)
	cfg.PruneFraction = 0.5
	res := Train(smallMLP(4), train, val, cfg)
	if math.Abs(res.Compression-2) > 0.1 {
		t.Fatalf("magnitude compression = %v, want ~2", res.Compression)
	}
	if res.BestValAcc < 0.3 {
		t.Fatalf("magnitude val acc = %v", res.BestValAcc)
	}
}

func TestTrainVariational(t *testing.T) {
	train, val := smallData(300, 5)
	m := models.ReducedMNISTMLP("vdm", 14, 32, 32, 5, prune.Variational{})
	cfg := quickCfg(MethodVariational)
	cfg.Schedule = optim.Constant(0.05) // VD is unstable at high LR (the point of Fig 5)
	cfg.KLScale = 1.0 / 240
	res := Train(m, train, val, cfg)
	if res.Diverged {
		t.Skip("VD diverged at this configuration (paper-consistent behaviour)")
	}
	if res.BestValAcc < 0.3 {
		t.Fatalf("VD val acc = %v", res.BestValAcc)
	}
	if res.Compression < 1 {
		t.Fatalf("VD compression = %v", res.Compression)
	}
}

func TestTrainVariationalPanicsOnPlainModel(t *testing.T) {
	train, val := smallData(100, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for VD on a plain model")
		}
	}()
	Train(smallMLP(6), train, val, quickCfg(MethodVariational))
}

func TestTrainSlimming(t *testing.T) {
	// Slimming needs BN layers; use a small conv net.
	train, val := convData(200, 7)
	m := models.NewVGGS(models.VGGSReduced(8, 2, 7, nil))
	cfg := quickCfg(MethodSlimming)
	cfg.Schedule = optim.Constant(0.05)
	cfg.SlimLambda = 1e-4
	cfg.SlimPruneFraction = 0.3
	cfg.SlimPruneAtEpoch = 2
	res := Train(m, train, val, cfg)
	if res.Compression <= 1 {
		t.Fatalf("slimming compression = %v, want > 1", res.Compression)
	}
}

// convData builds a small 8×8 RGB dataset for conv models.
func convData(n int, seed uint64) (train, val *Dataset) {
	cfg := data.SynthConfig{
		Classes: 10, Samples: n, Size: 8, Channels: 3,
		Bumps: 4, MaxShift: 1, Noise: 0.1, Seed: seed,
	}
	ds := data.Generate(cfg)
	return ds.Split(n * 4 / 5)
}

func TestTrainEarlyStopping(t *testing.T) {
	train, val := smallData(200, 8)
	cfg := quickCfg(MethodBaseline)
	cfg.Epochs = 50
	cfg.Patience = 2
	cfg.Schedule = optim.Constant(0.0) // no learning: accuracy frozen
	res := Train(smallMLP(8), train, val, cfg)
	if len(res.History) > 4 {
		t.Fatalf("early stopping failed: %d epochs ran", len(res.History))
	}
}

func TestTrainSnapshotsAndDiffusion(t *testing.T) {
	train, val := smallData(200, 9)
	cfg := quickCfg(MethodBaseline)
	cfg.SnapshotEvery = 3
	cfg.MaxSnapshots = 5
	res := Train(smallMLP(9), train, val, cfg)
	if len(res.Snapshots) == 0 || len(res.Snapshots) > 5 {
		t.Fatalf("snapshots = %d, want 1..5", len(res.Snapshots))
	}
	if len(res.DiffusionSteps) < 2 {
		t.Fatal("diffusion series too short")
	}
	if res.DiffusionDist[0] != 0 {
		t.Fatalf("diffusion must start at 0, got %v", res.DiffusionDist[0])
	}
	// Distances must grow from the anchor as training proceeds.
	last := res.DiffusionDist[len(res.DiffusionDist)-1]
	if last <= 0 {
		t.Fatalf("final diffusion distance = %v, want > 0", last)
	}
}

func TestTrainDeterministic(t *testing.T) {
	train, val := smallData(200, 10)
	cfg := quickCfg(MethodDropBack)
	cfg.Budget = 500
	r1 := Train(smallMLP(10), train, val, cfg)
	r2 := Train(smallMLP(10), train, val, cfg)
	if r1.BestValAcc != r2.BestValAcc || r1.BestEpoch != r2.BestEpoch {
		t.Fatalf("non-deterministic training: %v/%v vs %v/%v",
			r1.BestValAcc, r1.BestEpoch, r2.BestValAcc, r2.BestEpoch)
	}
	for i := range r1.History {
		if r1.History[i].TrainLoss != r2.History[i].TrainLoss {
			t.Fatal("per-epoch losses differ between identical runs")
		}
	}
}

func TestEvaluateBatching(t *testing.T) {
	_, val := smallData(150, 11)
	m := smallMLP(11)
	l1, a1 := Evaluate(m, val, 7)  // uneven final batch
	l2, a2 := Evaluate(m, val, 30) // divides evenly
	if math.Abs(l1-l2) > 1e-6 || math.Abs(a1-a2) > 1e-6 {
		t.Fatalf("Evaluate depends on batch size: (%v,%v) vs (%v,%v)", l1, a1, l2, a2)
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodBaseline: "Baseline", MethodDropBack: "DropBack",
		MethodMagnitude: "Mag Pruning", MethodVariational: "Var. Dropout",
		MethodSlimming: "Slimming", Method(99): "Unknown",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("Method(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestTrainPanicsOnBadConfig(t *testing.T) {
	train, val := smallData(100, 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero epochs")
		}
	}()
	Train(smallMLP(12), train, val, TrainConfig{Method: MethodBaseline, BatchSize: 8})
}

func TestPublicAPIFacade(t *testing.T) {
	ds := MNISTLike(50, 1)
	if ds.Len() != 50 {
		t.Fatal("MNISTLike facade broken")
	}
	cds := CIFARLike(20, 1)
	if cds.X.Shape[1] != 3 {
		t.Fatal("CIFARLike facade broken")
	}
	if MNIST100100(1).Set.Total() != 89610 {
		t.Fatal("MNIST100100 facade broken")
	}
	if LeNet300100(1).Set.Total() != 266610 {
		t.Fatal("LeNet300100 facade broken")
	}
	if VGGSReduced(8, 2, 1, false).Set.Total() == 0 {
		t.Fatal("VGGSReduced facade broken")
	}
	if WRNReduced(10, 1, 1, false).Set.Total() == 0 {
		t.Fatal("WRNReduced facade broken")
	}
	if DenseNetReduced(13, 4, 1, false).Set.Total() == 0 {
		t.Fatal("DenseNetReduced facade broken")
	}
}

func TestEvaluateDetailed(t *testing.T) {
	train, val := smallData(200, 41)
	m := smallMLP(41)
	Train(m, train, val, TrainConfig{Method: MethodBaseline, Epochs: 3, BatchSize: 32, Seed: 41})
	conf := EvaluateDetailed(m, val, 16)
	if conf.Total() != int64(val.Len()) {
		t.Fatalf("confusion total %d != val size %d", conf.Total(), val.Len())
	}
	_, acc := Evaluate(m, val, 16)
	if d := conf.Accuracy() - acc; d > 1e-12 || d < -1e-12 {
		t.Fatalf("confusion accuracy %v != Evaluate accuracy %v", conf.Accuracy(), acc)
	}
	if stats := conf.PerClass(); len(stats) != val.Classes {
		t.Fatalf("per-class stats length %d", len(stats))
	}
}

func TestTrainDSD(t *testing.T) {
	train, val := smallData(300, 51)
	cfg := quickCfg(MethodDSD)
	cfg.Epochs = 6
	cfg.DSDSparseFraction = 0.3
	cfg.DSDSparseStart = 2
	cfg.DSDSparseEnd = 4
	res := Train(smallMLP(51), train, val, cfg)
	if res.Diverged {
		t.Fatal("DSD diverged")
	}
	if res.BestValAcc < 0.5 {
		t.Fatalf("DSD val acc = %v", res.BestValAcc)
	}
	// §2.2's point: DSD's final model is dense.
	if res.Compression != 1 {
		t.Fatalf("DSD compression = %v, want 1 (dense final model)", res.Compression)
	}
}

func TestMethodDSDString(t *testing.T) {
	if MethodDSD.String() != "DSD" {
		t.Fatalf("MethodDSD.String() = %q", MethodDSD.String())
	}
}
